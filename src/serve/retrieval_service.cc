#include "serve/retrieval_service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "io/serialize.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace adamine::serve {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kExhaustive:
      return "exhaustive";
    case Backend::kIvf:
      return "ivf";
    case Backend::kQuantized:
      return "quantized";
    case Backend::kMutable:
      return "mutable";
  }
  return "unknown";
}

StatusOr<Backend> BackendFromName(const std::string& name) {
  // The registry owns the name space: a miss here reports every registered
  // backend, so the CLI, ServeConfig and ShardServer all fail the same way.
  auto canonical = CanonicalBackendName(name);
  if (!canonical.ok()) return canonical.status();
  if (*canonical == "scalar") return Backend::kScalar;
  if (*canonical == "exhaustive") return Backend::kExhaustive;
  if (*canonical == "ivf") return Backend::kIvf;
  if (*canonical == "quantized") return Backend::kQuantized;
  if (*canonical == "mutable") return Backend::kMutable;
  return Status::InvalidArgument(
      "backend '" + *canonical +
      "' is registered but cannot back an embedded RetrievalService "
      "(embeddable backends: scalar, exhaustive, ivf, quantized, mutable)");
}

Status ServeConfig::Validate() const {
  if (micro_batch <= 0) {
    return Status::InvalidArgument("micro_batch must be positive");
  }
  if (cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  if (cache_capacity_bytes < 0) {
    return Status::InvalidArgument("cache_capacity_bytes must be >= 0");
  }
  if (max_inflight < 0 || max_queue < 0) {
    return Status::InvalidArgument("max_inflight/max_queue must be >= 0");
  }
  if (max_inflight == 0 && max_queue > 0) {
    return Status::InvalidArgument(
        "max_queue requires admission control (max_inflight > 0)");
  }
  ADAMINE_RETURN_IF_ERROR(degradation.Validate());
  if (rerank_factor < 1) {
    return Status::InvalidArgument("rerank_factor must be >= 1");
  }
  if (seal_threshold < 1) {
    return Status::InvalidArgument("seal_threshold must be >= 1");
  }
  if (memtable_max_rows < 0 || memtable_max_bytes < 0 || max_seal_lag < 0) {
    return Status::InvalidArgument(
        "memtable budgets and max_seal_lag must be >= 0 (0 = unbounded)");
  }
  if (memtable_max_rows > 0 && memtable_max_rows < seal_threshold) {
    return Status::InvalidArgument(
        "memtable_max_rows below seal_threshold would backpressure before "
        "sealing can ever trigger");
  }
  if (admit_wait_ms < 0.0 || scrub_interval_ms < 0.0) {
    return Status::InvalidArgument(
        "admit_wait_ms/scrub_interval_ms must be >= 0");
  }
  if (backend == Backend::kIvf) {
    ADAMINE_RETURN_IF_ERROR(ivf.Validate());
    if (degradation.target_ms > 0.0 &&
        degradation.min_probes > ivf.num_probes) {
      return Status::InvalidArgument(
          "degradation.min_probes must not exceed ivf.num_probes");
    }
  }
  return Status::Ok();
}

namespace {

/// The up-front embedding audit behind Create/Load: a corrupt or truncated
/// bundle must surface as a descriptive Status here, never as a CHECK
/// crash or silently wrong similarities later.
Status ValidateItems(const Tensor& items) {
  if (items.ndim() != 2) {
    return Status::InvalidArgument("items must be 2-D [N, D]");
  }
  const int64_t n = items.rows();
  const int64_t d = items.cols();
  if (d <= 0) {
    return Status::InvalidArgument("items have dimension " +
                                   std::to_string(d) + "; need dim > 0");
  }
  const float* data = items.data();
  for (int64_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const float v = data[i * d + j];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "item row " + std::to_string(i) + " has a non-finite value at "
            "column " + std::to_string(j) + " (corrupt embeddings?)");
      }
      norm_sq += static_cast<double>(v) * static_cast<double>(v);
    }
    const double norm = std::sqrt(norm_sq);
    if (std::abs(norm - 1.0) > 1e-3) {
      return Status::InvalidArgument(
          "item row " + std::to_string(i) + " has L2 norm " +
          std::to_string(norm) +
          "; the service expects unit rows (within 1e-3)");
    }
  }
  return Status::Ok();
}

}  // namespace

RetrievalService::RetrievalService(Tensor items, const ServeConfig& config)
    : config_(config), items_(std::move(items)) {
  admission_ = std::make_unique<AdmissionController>(config_.max_inflight,
                                                     config_.max_queue);
}

StatusOr<std::unique_ptr<RetrievalService>> RetrievalService::Create(
    Tensor items, const ServeConfig& config) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  ADAMINE_RETURN_IF_ERROR(ValidateItems(items));
  std::unique_ptr<RetrievalService> service(
      new RetrievalService(std::move(items), config));
  // Tensor copies alias the buffer, so the backend shares the item rows.
  BackendConfig backend_config;
  backend_config.items = service->items_;
  backend_config.ivf = config.ivf;
  backend_config.rerank_factor = config.rerank_factor;
  backend_config.wal_dir = config.wal_dir;
  backend_config.seal_threshold = config.seal_threshold;
  backend_config.memtable_max_rows = config.memtable_max_rows;
  backend_config.memtable_max_bytes = config.memtable_max_bytes;
  backend_config.max_seal_lag = config.max_seal_lag;
  backend_config.admit_wait_ms = config.admit_wait_ms;
  backend_config.scrub_interval_ms = config.scrub_interval_ms;
  auto backend = CreateBackend(BackendName(config.backend), backend_config);
  if (!backend.ok()) return backend.status();
  service->backend_ = std::move(backend.value());
  if (service->backend_->has_probes() && config.degradation.target_ms > 0.0) {
    service->degradation_ = std::make_unique<DegradationController>(
        config.degradation, service->backend_->probes());
  }
  return service;
}

StatusOr<std::unique_ptr<RetrievalService>> RetrievalService::Load(
    const std::string& path, const std::string& name,
    const ServeConfig& config) {
  auto bundle = io::LoadTensorBundle(path);
  if (!bundle.ok()) return bundle.status();
  for (auto& entry : bundle.value()) {
    if (entry.name == name) {
      return Create(std::move(entry.tensor), config);
    }
  }
  return Status::NotFound("no tensor named '" + name + "' in " + path);
}

StatusOr<int64_t> RetrievalService::Add(const Tensor& row) {
  if (!row.defined() || row.numel() != dim()) {
    return Status::InvalidArgument(
        "row must hold exactly dim = " + std::to_string(dim()) + " values");
  }
  // The same audit Create applies to the seed items: a non-finite or
  // un-normalised row must never enter the live corpus.
  Tensor audited({1, dim()});
  std::copy(row.data(), row.data() + dim(), audited.data());
  ADAMINE_RETURN_IF_ERROR(ValidateItems(audited));
  // The backend bumps its epoch on success, which re-keys the cache — no
  // explicit invalidation needed (see CacheKey).
  return backend_->Add(audited);
}

Status RetrievalService::Delete(int64_t id) { return backend_->Delete(id); }

Status RetrievalService::SetProbes(int64_t probes) {
  // The backend owns the dial (and its validation/rejection message); the
  // service only re-anchors the degradation controller on success.
  ADAMINE_RETURN_IF_ERROR(backend_->SetProbes(probes));
  std::lock_guard<std::mutex> lock(mu_);
  if (degradation_) degradation_->OnManualSetProbes(probes);
  return Status::Ok();
}

int64_t RetrievalService::probes() const { return backend_->probes(); }

HealthState RetrievalService::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degradation_ ? degradation_->health() : HealthState::kHealthy;
}

RetrievalService::TimePoint RetrievalService::DeadlineOf(
    const QueryOptions& options) {
  if (options.deadline_ms <= 0.0) return TimePoint::max();
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(
             static_cast<int64_t>(options.deadline_ms * 1000.0));
}

std::string RetrievalService::CacheKey(const float* query, int64_t k,
                                       int64_t probes) const {
  // Exact-match key: the raw query bytes plus everything that selects the
  // result — k, the probe dial, and the backend's mutation epoch. Keying
  // by the epoch is the invalidation mechanism for live mutation: an Add /
  // Delete bumps it, every pre-mutation entry becomes unreachable (and
  // ages out through the LRU), and the same query re-scored observes the
  // new row set. Immutable backends report a constant epoch, so their keys
  // are unchanged.
  const int64_t epoch = backend_->epoch();
  const size_t query_bytes = sizeof(float) * static_cast<size_t>(dim());
  std::string key;
  key.resize(query_bytes + 3 * sizeof(int64_t));
  std::memcpy(key.data(), query, query_bytes);
  std::memcpy(key.data() + query_bytes, &k, sizeof(k));
  std::memcpy(key.data() + query_bytes + sizeof(k), &probes, sizeof(probes));
  std::memcpy(key.data() + query_bytes + sizeof(k) + sizeof(probes), &epoch,
              sizeof(epoch));
  return key;
}

bool RetrievalService::CacheLookup(const std::string& key,
                                   std::vector<int64_t>* result) {
  if (config_.cache_capacity == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_map_.find(key);
  if (it == cache_map_.end()) {
    ++stats_.cache_misses;
    return false;
  }
  ++stats_.cache_hits;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  *result = it->second->second;
  return true;
}

namespace {

int64_t CacheEntryBytes(const std::string& key,
                        const std::vector<int64_t>& result) {
  return static_cast<int64_t>(key.size()) +
         static_cast<int64_t>(result.size() * sizeof(int64_t));
}

/// Strips per-hit scores for the ids-only serving APIs and the LRU cache.
std::vector<int64_t> IdsOf(const std::vector<ScoredHit>& hits) {
  std::vector<int64_t> ids;
  ids.reserve(hits.size());
  for (const ScoredHit& hit : hits) ids.push_back(hit.index);
  return ids;
}

}  // namespace

void RetrievalService::CacheInsert(const std::string& key,
                                   const std::vector<int64_t>& result) {
  if (config_.cache_capacity == 0) return;
  const int64_t entry_bytes = CacheEntryBytes(key, result);
  if (config_.cache_capacity_bytes > 0 &&
      entry_bytes > config_.cache_capacity_bytes) {
    // The entry alone overflows the byte budget; inserting it would only
    // evict everything else and then itself. Serve it uncached.
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    // A concurrent miss on the same query raced us here; refresh recency.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(key, result);
  cache_map_[key] = cache_lru_.begin();
  cache_bytes_ += entry_bytes;
  // Evict by whichever limit binds first: entry count or byte footprint.
  while (static_cast<int64_t>(cache_lru_.size()) > config_.cache_capacity ||
         (config_.cache_capacity_bytes > 0 &&
          cache_bytes_ > config_.cache_capacity_bytes)) {
    const auto& victim = cache_lru_.back();
    cache_bytes_ -= CacheEntryBytes(victim.first, victim.second);
    cache_map_.erase(victim.first);
    cache_lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

Status RetrievalService::DeadlineMiss(const char* where) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadline_misses;
  }
  return Status::DeadlineExceeded(std::string("deadline exceeded ") + where);
}

StatusOr<std::vector<std::vector<ScoredHit>>>
RetrievalService::ScoreMicroBatch(const Tensor& queries, int64_t k,
                                  int64_t probes, TimePoint deadline) {
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  // Re-check after acquiring the executor: a request that waited out its
  // budget in line behind slow batches must fail before burning a GEMM.
  if (std::chrono::steady_clock::now() >= deadline) {
    return DeadlineMiss("waiting for the scoring executor");
  }
  // Armed serve.score.delay simulates slow scoring (cold pages, CPU
  // contention): the skip field carries the delay in milliseconds and the
  // stall counts towards the score stage, so it drives the degradation
  // controller exactly like a real slowdown.
  double stall_ms = 0.0;
  const int64_t delay_ms = fault::ArmedSkip(fault::kServeScoreDelay);
  if (delay_ms >= 0) {
    Stopwatch stall;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    stall_ms = stall.ElapsedMillis();
  }
  // Qualified: the QueryBatch member function shadows the struct in here.
  serve::QueryBatch batch{queries};
  QueryOptions score_options;
  score_options.probes = probes;
  auto result = backend_->ScoreTopK(batch, /*filter=*/nullptr, k,
                                    score_options);
  if (!result.ok()) return result.status();
  const double score_ms = stall_ms + result->score_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.score.Record(score_ms);
    if (result->rank_ms >= 0.0) stats_.rank.Record(result->rank_ms);
    if (degradation_) {
      // The controller only moves the dial it owns: a manual SetProbes
      // between this batch's dispatch and now is re-anchored, not undone
      // (OnManualSetProbes resets the window).
      const DegradationDecision decision = degradation_->Observe(score_ms);
      if (decision.changed) {
        // The controller moves within (0, the seed probes], which every
        // probed backend accepts.
        const Status dialed = backend_->SetProbes(decision.probes);
        ADAMINE_CHECK_MSG(dialed.ok(), dialed.ToString());
      }
    }
  }
  return std::move(result->hits);
}

StatusOr<std::vector<std::vector<ScoredHit>>>
RetrievalService::QueryBatchScored(const Tensor& queries, int64_t k,
                                   const QueryOptions& options) {
  ADAMINE_CHECK_EQ(queries.ndim(), 2);
  ADAMINE_CHECK_EQ(queries.cols(), dim());
  ADAMINE_CHECK_GT(k, 0);
  const TimePoint deadline = DeadlineOf(options);
  const int64_t b = queries.rows();
  const int64_t d = dim();
  const int64_t current_probes =
      options.probes > 0 ? options.probes : probes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += b;
  }
  AdmissionTicket ticket(*admission_, deadline);
  ADAMINE_RETURN_IF_ERROR(ticket.status());
  std::vector<std::vector<ScoredHit>> results;
  results.reserve(static_cast<size_t>(b));
  for (int64_t start = 0; start < b; start += config_.micro_batch) {
    const int64_t end = std::min(b, start + config_.micro_batch);
    if (start > 0 && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineMiss("between micro-batches");
    }
    Tensor micro({end - start, d});
    std::copy(queries.data() + start * d, queries.data() + end * d,
              micro.data());
    auto scored = ScoreMicroBatch(micro, k, current_probes, deadline);
    if (!scored.ok()) return scored.status();
    for (auto& row : scored.value()) results.push_back(std::move(row));
  }
  return results;
}

StatusOr<std::vector<int64_t>> RetrievalService::QueryWithOptions(
    const Tensor& query, int64_t k, const QueryOptions& options) {
  ADAMINE_CHECK_EQ(query.numel(), dim());
  ADAMINE_CHECK_GT(k, 0);
  const TimePoint deadline = DeadlineOf(options);
  // The effective probe count — a per-request override when set, else the
  // dial — selects the result, so it must drive both the scoring and the
  // cache key. Keying by the dial alone while an override was in force
  // would file override-scored results under the dial's namespace (and
  // vice versa), serving stale mixes after the next SetProbes.
  const int64_t current_probes =
      options.probes > 0 ? options.probes : probes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  const std::string key = CacheKey(query.data(), k, current_probes);
  std::vector<int64_t> cached;
  if (CacheLookup(key, &cached)) return cached;
  AdmissionTicket ticket(*admission_, deadline);
  ADAMINE_RETURN_IF_ERROR(ticket.status());
  Tensor batch({1, dim()});
  std::copy(query.data(), query.data() + dim(), batch.data());
  auto results = ScoreMicroBatch(batch, k, current_probes, deadline);
  if (!results.ok()) return results.status();
  std::vector<int64_t> ids = IdsOf(results.value()[0]);
  CacheInsert(key, ids);
  return ids;
}

StatusOr<std::vector<std::vector<int64_t>>>
RetrievalService::QueryBatchWithOptions(const Tensor& queries, int64_t k,
                                        const QueryOptions& options) {
  ADAMINE_CHECK_EQ(queries.ndim(), 2);
  ADAMINE_CHECK_EQ(queries.cols(), dim());
  ADAMINE_CHECK_GT(k, 0);
  const TimePoint deadline = DeadlineOf(options);
  const int64_t b = queries.rows();
  const int64_t d = dim();
  // Effective probes (override or dial) — see QueryWithOptions.
  const int64_t current_probes =
      options.probes > 0 ? options.probes : probes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += b;
  }
  // One admission slot covers the whole request; it is taken lazily at the
  // first micro-batch that actually needs scoring, so cache-only requests
  // never contend for a slot.
  std::unique_ptr<AdmissionTicket> ticket;
  std::vector<std::vector<int64_t>> results(static_cast<size_t>(b));
  for (int64_t start = 0; start < b; start += config_.micro_batch) {
    const int64_t end = std::min(b, start + config_.micro_batch);
    // Answer what the cache can; collect the misses for one shared GEMM.
    std::vector<int64_t> miss_rows;
    std::vector<std::string> miss_keys;
    for (int64_t i = start; i < end; ++i) {
      std::string key =
          CacheKey(queries.data() + i * d, k, current_probes);
      if (CacheLookup(key, &results[static_cast<size_t>(i)])) continue;
      miss_rows.push_back(i);
      miss_keys.push_back(std::move(key));
    }
    if (miss_rows.empty()) continue;
    if (!ticket) {
      ticket = std::make_unique<AdmissionTicket>(*admission_, deadline);
      ADAMINE_RETURN_IF_ERROR(ticket->status());
    }
    // A deadline check between micro-batches, so one slow batch cannot
    // hold the rest of the request's budget hostage.
    if (std::chrono::steady_clock::now() >= deadline) {
      return DeadlineMiss("between micro-batches");
    }
    Tensor micro({static_cast<int64_t>(miss_rows.size()), d});
    for (size_t r = 0; r < miss_rows.size(); ++r) {
      const float* src = queries.data() + miss_rows[r] * d;
      std::copy(src, src + d, micro.data() + static_cast<int64_t>(r) * d);
    }
    auto scored = ScoreMicroBatch(micro, k, current_probes, deadline);
    if (!scored.ok()) return scored.status();
    for (size_t r = 0; r < miss_rows.size(); ++r) {
      std::vector<int64_t> ids = IdsOf(scored.value()[r]);
      CacheInsert(miss_keys[r], ids);
      results[static_cast<size_t>(miss_rows[r])] = std::move(ids);
    }
  }
  return results;
}

std::vector<int64_t> RetrievalService::Query(const Tensor& query, int64_t k) {
  auto result = QueryWithOptions(query, k, QueryOptions());
  ADAMINE_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result.value());
}

std::vector<std::vector<int64_t>> RetrievalService::QueryBatch(
    const Tensor& queries, int64_t k) {
  auto result = QueryBatchWithOptions(queries, k, QueryOptions());
  ADAMINE_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result.value());
}

void RetrievalService::RecordEmbedMillis(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.embed.Record(ms);
}

ServeStats RetrievalService::Snapshot() const {
  // The admission controller and the backend's probe dial / pressure
  // gauges keep their own synchronisation; read them before taking mu_ so
  // locks never nest.
  const AdmissionStats admission = admission_->Snapshot();
  const int64_t current_probes = backend_->probes();
  const MutationPressure pressure = backend_->pressure();
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats = stats_;
  stats.admitted = admission.admitted;
  stats.shed = admission.shed;
  stats.queue_timeouts = admission.queue_timeouts;
  stats.inflight_peak = admission.inflight_peak;
  stats.queue_peak = admission.queue_peak;
  stats.cache_bytes = cache_bytes_;
  stats.probes = current_probes;
  stats.mutation = pressure;
  if (degradation_) {
    stats.health = degradation_->health();
    stats.probe_dial_downs = degradation_->dial_downs() - dial_downs_base_;
    stats.probe_dial_ups = degradation_->dial_ups() - dial_ups_base_;
  }
  // A quarantined segment (or the read-only latch) means the corpus is
  // serving but impaired: rows are gone until re-ingested, mutations may
  // be refused. Surface that as degraded health even without a
  // degradation controller, so operators see it where they already look.
  if ((pressure.quarantined_segments > 0 || pressure.read_only) &&
      stats.health == HealthState::kHealthy) {
    stats.health = HealthState::kDegraded;
  }
  return stats;
}

void RetrievalService::ResetStats() {
  admission_->ResetStats();
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = ServeStats();
  if (degradation_) {
    dial_downs_base_ = degradation_->dial_downs();
    dial_ups_base_ = degradation_->dial_ups();
  }
}

}  // namespace adamine::serve
