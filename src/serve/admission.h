#ifndef ADAMINE_SERVE_ADMISSION_H_
#define ADAMINE_SERVE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace adamine::serve {

/// Counters of everything the admission controller decided since
/// construction / Reset: how many requests ran, how many were shed at the
/// door, how many timed out waiting for a slot, and how deep the in-flight
/// and waiting populations ever got.
struct AdmissionStats {
  int64_t admitted = 0;        // Requests granted an execution slot.
  int64_t shed = 0;            // Rejected fast with kUnavailable.
  int64_t queue_timeouts = 0;  // Deadline expired while queued.
  int64_t inflight_peak = 0;
  int64_t queue_peak = 0;
};

/// Bounded admission queue with load-shedding, the front door of the
/// serving layer: at most `max_inflight` requests hold execution slots at
/// once, at most `max_queue` more may wait for one, and everything beyond
/// that is rejected immediately with kUnavailable — so overload turns into
/// fast, explicit errors instead of an unbounded convoy on the scoring
/// mutex. Waiters with a deadline give up with kDeadlineExceeded when it
/// passes. `max_inflight == 0` disables the controller entirely (every
/// Admit succeeds; Release is a no-op beyond accounting).
///
/// Thread safety: all methods may be called concurrently.
class AdmissionController {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  AdmissionController(int64_t max_inflight, int64_t max_queue);

  /// Tries to take an execution slot. `deadline` bounds the wait when the
  /// in-flight population is full (TimePoint::max() waits indefinitely).
  /// Ok: a slot is held and must be returned with Release. The armed
  /// fault point fault::kServeQueueReject sheds the request as if the
  /// queue were full.
  Status Admit(TimePoint deadline);

  /// Returns the slot taken by a successful Admit and wakes one waiter.
  void Release();

  bool enabled() const { return max_inflight_ > 0; }
  int64_t inflight() const;
  int64_t queued() const;
  AdmissionStats Snapshot() const;
  void ResetStats();

 private:
  const int64_t max_inflight_;
  const int64_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int64_t inflight_ = 0;
  int64_t queued_ = 0;
  AdmissionStats stats_;
};

/// RAII slot holder: releases on destruction if the Admit succeeded.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionController& controller,
                  AdmissionController::TimePoint deadline)
      : controller_(controller), status_(controller.Admit(deadline)) {}
  ~AdmissionTicket() {
    if (status_.ok()) controller_.Release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  const Status& status() const { return status_; }

 private:
  AdmissionController& controller_;
  Status status_;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_ADMISSION_H_
