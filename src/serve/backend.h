#ifndef ADAMINE_SERVE_BACKEND_H_
#define ADAMINE_SERVE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/ivf_index.h"
#include "serve/serve_stats.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::serve {

/// Inner product as a single float accumulation chain in ascending j — the
/// per-element order of kernel::Gemm and of index::IvfIndex's scalar path.
/// This is *the* reference similarity: every exact backend must produce
/// scores with these bits. Defined in backend.cc, which is on the
/// -ffp-contract=off list, so callers in other TUs get the un-fused chain
/// regardless of their own compile flags.
float DotAscending(const float* a, const float* b, int64_t d);

/// One retrieved item with its cosine score — the currency of the sharded
/// merge path, where per-shard top-k lists are re-ranked globally and
/// shard-local tie-breaking alone cannot order candidates across shards.
struct ScoredHit {
  int64_t index = 0;  // Row id in the backend's item set.
  float score = 0.0f;

  bool operator==(const ScoredHit& other) const {
    return index == other.index && score == other.score;
  }
};

/// Per-request serving options, threaded from the service entry point down
/// to the scoring backend.
struct QueryOptions {
  /// Latency budget in milliseconds, measured from entry into the service;
  /// 0 means no deadline. Checked while queued for admission, before
  /// scoring, and between micro-batches; an exceeded budget returns
  /// kDeadlineExceeded instead of results.
  double deadline_ms = 0.0;
  /// Probe count for this request on backends with a probe dial; 0 means
  /// the backend's current dial setting. The service pins the dial value it
  /// read for the cache key here, so a concurrent SetProbes can never make
  /// the scored result disagree with the key it is cached under.
  int64_t probes = 0;
};

/// A batch of query rows. An undefined tensor is the empty batch (zero
/// queries) — Tensor cannot represent a [0, D] shape, so emptiness is the
/// defined() bit, and every backend answers it with zero result rows.
struct QueryBatch {
  Tensor queries;  // [B, D] unit rows, or undefined for the empty batch.

  int64_t size() const { return queries.defined() ? queries.rows() : 0; }
  bool empty() const { return size() == 0; }
};

/// Predicate-pushdown seam for the filtered-retrieval ROADMAP item (the
/// paper's class / super-category structure): a query scoped to a subset of
/// the corpus. No backend implements it yet — ScoreTopK answers any
/// non-null filter with kUnimplemented, and the golden harness pins that
/// contract for every registered backend, so the first real implementation
/// inherits its correctness coverage for free.
struct Filter {
  /// Global row ids the query is allowed to retrieve, ascending.
  std::vector<int64_t> allowed_ids;
};

/// A scored top-k answer plus the stage latencies the backend observed, so
/// the serving layer can keep per-stage counters without knowing how the
/// backend splits its work.
struct TopKResult {
  /// hits[i] answers query row i: up to min(k, corpus) hits ordered by
  /// (score desc, global id asc). Approximate backends may return fewer
  /// when their candidate set runs short.
  std::vector<std::vector<ScoredHit>> hits;
  double score_ms = 0.0;  // Similarity-computation wall time.
  double rank_ms = -1.0;  // Top-k ranking wall time; < 0 when fused.
};

/// Everything a factory may need to build a backend over a corpus. Kept
/// deliberately flat (no ServeConfig) so the registry has no dependency on
/// the serving layer above it; backends ignore the knobs they do not use.
struct BackendConfig {
  Tensor items;  // [N, D] unit rows; copies alias the buffer.
  /// Coarse-quantiser settings for probed backends ("ivf").
  index::IvfConfig ivf;
  /// Topology for sharded backends ("sharded", "remote").
  int64_t num_shards = 1;
  int64_t num_replicas = 1;
  /// Candidate floor for two-stage backends ("quantized"): the approximate
  /// scan keeps at least min(N, rerank_factor * k) rows for the exact
  /// rerank. Must be >= 1; larger values trade scan selectivity for rerank
  /// headroom but never change results (the verified interval selection
  /// already guarantees exactness — see src/quant/quantized_backend.cc).
  int64_t rerank_factor = 4;
  /// Durability directory for the "mutable" backend's WAL + segments +
  /// manifest. Empty means an ephemeral per-backend temp directory,
  /// deleted on destruction; non-empty persists across processes, and a
  /// recovered non-empty corpus — not `items` — is the source of truth.
  std::string wal_dir;
  /// Memtable rows that trigger a background seal on the "mutable"
  /// backend (small values create compaction pressure; see src/mutate/).
  int64_t seal_threshold = 4096;
  /// Ingest admission control for the "mutable" backend (see DESIGN.md,
  /// "Resource pressure and scrubbing"): memtable budgets and the seal-lag
  /// watermark past which mutations shed with kResourceExhausted (or block
  /// up to admit_wait_ms). 0 = unbounded / shed immediately.
  int64_t memtable_max_rows = 0;
  int64_t memtable_max_bytes = 0;
  int64_t max_seal_lag = 0;
  double admit_wait_ms = 0.0;
  /// Background integrity-scrub cadence for the "mutable" backend;
  /// 0 = scrubbing off.
  double scrub_interval_ms = 0.0;
};

/// A scoring backend: one way to turn a query batch into per-query top-k
/// lists over a fixed corpus. Implementations must honour the determinism
/// contract (DESIGN.md, "Backend registry"): when exact() is true the
/// answer is bit-identical to the scalar reference — every (query, item)
/// similarity computed by the same ascending accumulation chain, ranked by
/// (score desc, global id asc) — at every kernel thread count; when
/// exact() is false the answer must still be deterministic, well-ordered
/// and carry reference-bitwise scores.
///
/// Thread safety: ScoreTopK / SetProbes / probes may be called
/// concurrently. Backends do not serialise scoring themselves — the
/// serving layer owns the executor mutex.
class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  /// The single entry point. Validates the request (k > 0, query shape),
  /// answers the empty batch with zero rows, rejects a non-null filter
  /// with kUnimplemented until a backend supports predicate pushdown, and
  /// delegates the rest to ScoreTopKImpl.
  StatusOr<TopKResult> ScoreTopK(const QueryBatch& batch,
                                 const Filter* filter, int64_t k,
                                 const QueryOptions& options);

  /// The registry name this backend was created under.
  virtual const char* name() const = 0;

  /// Corpus rows / embedding dimension served.
  virtual int64_t size() const = 0;
  virtual int64_t dim() const = 0;

  /// Probe dial. Backends without probes reject SetProbes with a
  /// descriptive kFailedPrecondition naming the backend; probes() is then 0
  /// and max_probes() 0.
  virtual bool has_probes() const { return false; }
  virtual Status SetProbes(int64_t probes);
  virtual int64_t probes() const { return 0; }
  virtual int64_t max_probes() const { return 0; }

  /// True when the current settings reproduce the scalar reference answer
  /// bit for bit (probed backends: every list scanned).
  virtual bool exact() const { return true; }

  /// Mutation epoch: bumped by every acknowledged Add / Delete, constant 0
  /// on immutable backends. The serving layer keys its result cache by
  /// this, so entries cached before a mutation become unreachable after it.
  virtual int64_t epoch() const { return 0; }

  /// Live mutation. Immutable backends (everything except "mutable")
  /// reject both with a descriptive kFailedPrecondition naming the
  /// backend. On success Add returns the new row's global id, durable
  /// before the call returns.
  virtual StatusOr<int64_t> Add(const Tensor& row);
  virtual Status Delete(int64_t id);

  /// Resource-pressure gauges; the all-zero default on immutable backends.
  virtual MutationPressure pressure() const { return {}; }

 protected:
  /// The backend's scoring body. Called with a validated non-empty batch
  /// and a null filter.
  virtual StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                             const Filter* filter, int64_t k,
                                             const QueryOptions& options) = 0;
};

/// Static registration facts about a backend, used by the golden harness
/// to pick the test matrix (probe sweeps, shard-count sweeps) without
/// creating an instance first.
struct BackendTraits {
  bool has_probes = false;  // Honours SetProbes / BackendConfig::ivf.
  bool sharded = false;     // Honours BackendConfig::num_shards/replicas.
};

using BackendFactory =
    std::function<StatusOr<std::unique_ptr<ScoringBackend>>(
        const BackendConfig&)>;

/// Registers a backend under `name`. The built-ins ("scalar", "exhaustive",
/// "ivf", "sharded") self-register on first registry access; out-of-tree
/// backends (a test's loopback-RPC topology, the future quantized path)
/// register here and inherit the golden harness's coverage with no new test
/// code. Fails with kInvalidArgument on a duplicate name.
Status RegisterBackend(const std::string& name, BackendFactory factory,
                       const BackendTraits& traits = {});

/// Creates backend `name` over `config`. Unknown names fail with a
/// kInvalidArgument that lists every registered name.
StatusOr<std::unique_ptr<ScoringBackend>> CreateBackend(
    const std::string& name, const BackendConfig& config);

/// Registered names, sorted. The golden suite instantiates one test per
/// entry, so registering a backend is all it takes to put it under test.
std::vector<std::string> RegisteredBackendNames();

/// Canonical name lookup shared by every string-to-backend mapping (CLI
/// --backend, ServeConfig, ShardServer): the registered name on a hit, a
/// kInvalidArgument listing registered names on a miss.
StatusOr<std::string> CanonicalBackendName(const std::string& name);

/// Registration traits of `name` (same miss behaviour as
/// CanonicalBackendName).
StatusOr<BackendTraits> TraitsOfBackend(const std::string& name);

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_BACKEND_H_
