#include "serve/shard_client.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "util/backoff.h"
#include "util/check.h"
#include "util/fault.h"

namespace adamine::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr ShardClient::TimePoint kNever = ShardClient::TimePoint::max();

/// `t + ms`, saturating: the "no deadline" sentinel stays at infinity
/// instead of wrapping around.
ShardClient::TimePoint AddMs(ShardClient::TimePoint t, double ms) {
  if (t == kNever) return kNever;
  return t + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
}

/// Delivers one attempt's final verdict to its replica's breaker. Success
/// and transient failure are health signals; a non-transient error says
/// nothing about the replica, so it only frees a half-open probe slot the
/// attempt may have been holding.
void ReportOutcome(CircuitBreaker* breaker, const Status& status,
                   bool probe) {
  if (status.ok()) {
    breaker->OnSuccess();
  } else if (status.IsTransient()) {
    breaker->OnFailure(Clock::now());
  } else if (probe) {
    breaker->ReleaseProbe();
  }
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (retry_max < 0) {
    return Status::InvalidArgument("retry_max must be >= 0");
  }
  if (backoff_base_ms < 0.0) {
    return Status::InvalidArgument("backoff_base_ms must be >= 0");
  }
  if (backoff_max_ms < backoff_base_ms) {
    return Status::InvalidArgument("backoff_max_ms must be >= backoff_base_ms");
  }
  return Status::Ok();
}

double RetryPolicy::BackoffMs(int64_t retry, uint64_t salt) const {
  // The shared capped-jittered-backoff helper; the formula (and its bits)
  // are pinned by RetryPolicyTest, so the refactor onto util/backoff.h must
  // be value-preserving.
  return backoff::JitteredBackoffMs(retry, backoff_base_ms, backoff_max_ms,
                                    jitter_seed, salt);
}

Status ShardClientConfig::Validate() const {
  if (shard_timeout_ms < 0.0) {
    return Status::InvalidArgument("shard_timeout_ms must be >= 0");
  }
  if (hedge_ms < 0.0) {
    return Status::InvalidArgument("hedge_ms must be >= 0");
  }
  ADAMINE_RETURN_IF_ERROR(retry.Validate());
  return breaker.Validate();
}

namespace {

std::vector<std::shared_ptr<ShardTransport>> WrapInProcess(
    std::vector<std::shared_ptr<RetrievalService>> services) {
  std::vector<std::shared_ptr<ShardTransport>> transports;
  transports.reserve(services.size());
  for (auto& service : services) {
    ADAMINE_CHECK_MSG(service != nullptr, "null replica service");
    transports.push_back(
        std::make_shared<InProcessShardTransport>(std::move(service)));
  }
  return transports;
}

}  // namespace

ShardClient::ShardClient(int64_t shard_index, int64_t global_offset,
                         std::vector<std::shared_ptr<ShardTransport>>
                             replicas,
                         const ShardClientConfig& config)
    : shard_index_(shard_index),
      global_offset_(global_offset),
      size_(replicas.empty() ? 0 : replicas.front()->size()),
      config_(config),
      replicas_(std::move(replicas)) {
  ADAMINE_CHECK_MSG(!replicas_.empty(), "shard needs at least one replica");
  for (const auto& replica : replicas_) {
    ADAMINE_CHECK_MSG(replica != nullptr, "null replica transport");
    ADAMINE_CHECK_MSG(replica->size() == size_,
                      "replicas of one shard must serve the same rows");
    breakers_.push_back(std::make_unique<CircuitBreaker>(config_.breaker));
  }
}

ShardClient::ShardClient(int64_t shard_index, int64_t global_offset,
                         std::vector<std::shared_ptr<RetrievalService>>
                             replicas,
                         const ShardClientConfig& config)
    : ShardClient(shard_index, global_offset,
                  WrapInProcess(std::move(replicas)), config) {}

ShardClient::~ShardClient() {
  std::lock_guard<std::mutex> lock(reaper_mu_);
  for (ReaperEntry& entry : outstanding_) {
    if (entry.thread.joinable()) entry.thread.join();
  }
  outstanding_.clear();
}

void ShardClient::Reap() {
  std::lock_guard<std::mutex> lock(reaper_mu_);
  auto it = outstanding_.begin();
  while (it != outstanding_.end()) {
    if (it->finished->load(std::memory_order_acquire)) {
      it->thread.join();
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t ShardClient::NextAllowedReplica(int64_t* cursor, TimePoint now,
                                        bool* probe) {
  const int64_t n = num_replicas();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t replica = (*cursor + i) % n;
    if (breakers_[static_cast<size_t>(replica)]->Allow(now, probe)) {
      *cursor = replica + 1;
      return replica;
    }
  }
  return -1;
}

std::shared_ptr<ShardClient::Attempt> ShardClient::Launch(
    const std::shared_ptr<QueryState>& state, int64_t replica, bool hedge,
    bool probe, const Tensor& queries, int64_t k,
    TimePoint attempt_deadline) {
  auto attempt = std::make_shared<Attempt>();
  attempt->replica = replica;
  attempt->hedge = hedge;
  attempt->probe = probe;
  auto finished = std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<ShardTransport> transport =
      replicas_[static_cast<size_t>(replica)];
  CircuitBreaker* breaker = breakers_[static_cast<size_t>(replica)].get();
  const int64_t shard = shard_index_;
  const int64_t offset = global_offset_;
  // `queries` is copied by value: Tensor copies share the underlying buffer,
  // so the attempt keeps the data alive without duplicating it. `breaker`
  // is a raw pointer into breakers_, which outlives the worker: the
  // destructor joins every attempt thread before the breakers die.
  std::thread worker([state, attempt, finished, transport, breaker, queries,
                      k, attempt_deadline, shard, replica, offset] {
    Status status;
    std::vector<std::vector<ScoredHit>> results;
    // Replica-scoped fault points first, then the fleet-wide bare points
    // (short-circuit: a scoped kill does not consume the bare schedule).
    const std::string scoped_fail =
        fault::ShardReplicaPoint(fault::kServeShardFail, shard, replica);
    if (fault::ShouldFail(scoped_fail) ||
        fault::ShouldFail(fault::kServeShardFail)) {
      status = Status::Unavailable("injected fault " +
                                   std::string(fault::kServeShardFail) +
                                   " at shard " + std::to_string(shard) +
                                   " replica " + std::to_string(replica));
    } else {
      const std::string scoped_delay =
          fault::ShardReplicaPoint(fault::kServeShardDelay, shard, replica);
      int64_t stall_ms = fault::ArmedSkip(scoped_delay);
      if (stall_ms < 0) stall_ms = fault::ArmedSkip(fault::kServeShardDelay);
      if (stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      }
      // The transport enforces whatever budget is left *after* any injected
      // network stall (an in-process replica converts it to QueryOptions; a
      // remote one sends it on the wire), so a wedged hop and a slow
      // replica look the same to the coordinator.
      auto got = transport->QueryScored(queries, k, attempt_deadline);
      if (got.ok()) {
        results = std::move(got).value();
        for (std::vector<ScoredHit>& row : results) {
          for (ScoredHit& hit : row) hit.index += offset;
        }
      } else {
        status = got.status();
      }
    }
    bool report = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      attempt->status = std::move(status);
      attempt->results = std::move(results);
      attempt->completed = true;
      if (attempt->abandoned) {
        // The coordinator returned before this attempt landed (hedge
        // loser, early failure, deadline): nobody will consume the
        // outcome, so deliver the breaker verdict from here — otherwise a
        // held half-open probe slot would stay occupied forever.
        if (!attempt->resolved) {
          attempt->resolved = true;
          report = true;
        }
      } else {
        state->done.push_back(attempt);
      }
    }
    state->cv.notify_all();
    if (report) ReportOutcome(breaker, attempt->status, attempt->probe);
    finished->store(true, std::memory_order_release);
  });
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    ReaperEntry entry;
    entry.thread = std::move(worker);
    entry.finished = std::move(finished);
    outstanding_.push_back(std::move(entry));
  }
  return attempt;
}

StatusOr<std::vector<std::vector<ScoredHit>>> ShardClient::Query(
    const Tensor& queries, int64_t k, TimePoint deadline) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
  }
  Reap();

  auto state = std::make_shared<QueryState>();
  std::vector<std::shared_ptr<Attempt>> inflight;
  auto result = QueryRounds(queries, k, deadline, state, &inflight);
  // Whatever path the round loop took out, every attempt it left behind —
  // a hedge loser on the success path, anything in flight on an early
  // return, a straggler that landed after the last pop — still owes its
  // breaker a verdict.
  AbandonOutstanding(state, inflight);
  return result;
}

void ShardClient::AbandonOutstanding(
    const std::shared_ptr<QueryState>& state,
    const std::vector<std::shared_ptr<Attempt>>& inflight) {
  std::vector<std::shared_ptr<Attempt>> landed;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (const std::shared_ptr<Attempt>& attempt : inflight) {
      if (attempt->resolved) continue;
      if (attempt->completed) {
        attempt->resolved = true;
        landed.push_back(attempt);
      } else {
        attempt->abandoned = true;  // The worker reports when it finishes.
      }
    }
  }
  for (const std::shared_ptr<Attempt>& attempt : landed) {
    ReportOutcome(breakers_[static_cast<size_t>(attempt->replica)].get(),
                  attempt->status, attempt->probe);
  }
}

StatusOr<std::vector<std::vector<ScoredHit>>> ShardClient::QueryRounds(
    const Tensor& queries, int64_t k, TimePoint deadline,
    const std::shared_ptr<QueryState>& state,
    std::vector<std::shared_ptr<Attempt>>* inflight) {
  int64_t cursor = 0;  // Replica rotation; deterministic from replica 0.
  // Per-attempt budget: whatever is left of the request deadline, tightened
  // by shard_timeout_ms when configured.
  const auto attempt_deadline = [this, deadline](TimePoint now) {
    if (config_.shard_timeout_ms <= 0.0) return deadline;
    return std::min(deadline, AddMs(now, config_.shard_timeout_ms));
  };
  Status last_error = Status::Unavailable(
      "shard " + std::to_string(shard_index_) +
      ": every replica circuit breaker is open");

  // Charges every attempt still in flight to its replica's breaker, exactly
  // once (the resolved flag survives into a straggler's completion).
  const auto penalise_inflight = [&](TimePoint now) {
    std::vector<std::shared_ptr<Attempt>> charged;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      for (const std::shared_ptr<Attempt>& attempt : *inflight) {
        if (!attempt->completed && !attempt->resolved) {
          attempt->resolved = true;
          charged.push_back(attempt);
        }
      }
    }
    for (const std::shared_ptr<Attempt>& attempt : charged) {
      breakers_[static_cast<size_t>(attempt->replica)]->OnFailure(now);
    }
  };

  for (int64_t round = 0; round <= config_.retry.retry_max; ++round) {
    if (round > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retries;
      }
      // Back off before retrying, bounded by the request deadline. A
      // straggler from an earlier round completing during the backoff wakes
      // the wait — its result is consumed below instead of going to waste.
      const double backoff_ms = config_.retry.BackoffMs(
          round - 1, static_cast<uint64_t>(shard_index_));
      const TimePoint wake = std::min(deadline, AddMs(Clock::now(),
                                                      backoff_ms));
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait_until(lock, wake,
                           [&state] { return !state->done.empty(); });
    }
    const TimePoint round_start = Clock::now();
    if (round_start >= deadline) {
      penalise_inflight(round_start);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.exhausted;
      return Status::DeadlineExceeded(
          "shard " + std::to_string(shard_index_) +
          ": request deadline expired during failover");
    }

    // Launch this round's primary attempt — unless an earlier attempt
    // already delivered an outcome (consume it first) or every breaker is
    // open (ride on whatever is still in flight).
    bool pending;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      pending = !state->done.empty();
    }
    if (!pending) {
      bool probe = false;
      const int64_t primary = NextAllowedReplica(&cursor, round_start, &probe);
      if (primary >= 0) {
        inflight->push_back(Launch(state, primary, /*hedge=*/false, probe,
                                   queries, k,
                                   attempt_deadline(round_start)));
      } else if (inflight->empty()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.exhausted;
        return last_error;
      }
    }

    TimePoint round_deadline = deadline;
    if (config_.shard_timeout_ms > 0.0) {
      round_deadline = std::min(deadline,
                                AddMs(round_start, config_.shard_timeout_ms));
    }
    TimePoint hedge_at = kNever;
    if (config_.hedge_ms > 0.0 && num_replicas() > 1) {
      hedge_at = AddMs(round_start, config_.hedge_ms);
    }
    bool hedged = false;

    // Consume attempt outcomes until the round succeeds, fails, or times
    // out; fire the hedge when the primary is slow.
    bool round_over = false;
    while (!round_over) {
      std::shared_ptr<Attempt> outcome;
      {
        std::unique_lock<std::mutex> lock(state->mu);
        const TimePoint wake =
            std::min(round_deadline, hedged ? kNever : hedge_at);
        const auto landed = [&state] { return !state->done.empty(); };
        if (wake == kNever) {
          // wait_until with time_point::max can overflow the clock
          // conversion on some standard libraries and busy-spin; an
          // unbounded wait is what is meant anyway (an attempt is always
          // in flight here, so a completion will wake us).
          state->cv.wait(lock, landed);
        } else {
          state->cv.wait_until(lock, wake, landed);
        }
        if (!state->done.empty()) {
          outcome = state->done.front();
          state->done.erase(state->done.begin());
        }
      }
      if (outcome != nullptr) {
        inflight->erase(std::remove(inflight->begin(), inflight->end(),
                                    outcome),
                        inflight->end());
        if (outcome->status.ok()) {
          if (!outcome->resolved) {
            outcome->resolved = true;
            breakers_[static_cast<size_t>(outcome->replica)]->OnSuccess();
          }
          if (outcome->hedge) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.hedges_won;
          }
          return std::move(outcome->results);
        }
        if (!outcome->status.IsTransient()) {
          // A corrupt query is corrupt on every replica: fail fast, no
          // breaker feedback (the replica did nothing wrong) — but a held
          // half-open probe slot must still be freed.
          if (!outcome->resolved) {
            outcome->resolved = true;
            if (outcome->probe) {
              breakers_[static_cast<size_t>(outcome->replica)]
                  ->ReleaseProbe();
            }
          }
          return outcome->status;
        }
        if (!outcome->resolved) {
          outcome->resolved = true;
          breakers_[static_cast<size_t>(outcome->replica)]->OnFailure(
              Clock::now());
        }
        last_error = outcome->status;
        if (inflight->empty()) round_over = true;  // Next round (retry).
        continue;
      }
      const TimePoint now = Clock::now();
      if (now >= round_deadline) {
        penalise_inflight(now);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.timeouts;
        }
        if (now >= deadline) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.exhausted;
          return Status::DeadlineExceeded(
              "shard " + std::to_string(shard_index_) +
              ": request deadline expired waiting on replicas");
        }
        last_error = Status::DeadlineExceeded(
            "shard " + std::to_string(shard_index_) +
            ": no replica answered within shard_timeout_ms");
        round_over = true;
        continue;
      }
      if (!hedged && now >= hedge_at) {
        hedged = true;
        bool probe = false;
        const int64_t backup = NextAllowedReplica(&cursor, now, &probe);
        if (backup >= 0) {
          inflight->push_back(Launch(state, backup, /*hedge=*/true, probe,
                                     queries, k, attempt_deadline(now)));
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.hedges_fired;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.exhausted;
  }
  return last_error;
}

ShardClientStats ShardClient::Snapshot() const {
  ShardClientStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.replicas.reserve(breakers_.size());
  for (const auto& breaker : breakers_) {
    out.replicas.push_back(breaker->Snapshot());
  }
  return out;
}

void ShardClient::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = ShardClientStats{};
}

}  // namespace adamine::serve
