#ifndef ADAMINE_SERVE_SHARDED_SERVICE_H_
#define ADAMINE_SERVE_SHARDED_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/retrieval_service.h"
#include "serve/shard_client.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::serve {

struct ShardedServeConfig {
  /// Corpus partitions; each shard serves one contiguous row range.
  int64_t num_shards = 1;
  /// Replicas per shard. Replicas serve identical rows; the shard client
  /// fails over between them.
  int64_t num_replicas = 1;
  /// Config applied to every replica service. Must use an exact backend
  /// (scalar or exhaustive — the merge re-ranks per-hit scores globally)
  /// and is served cache-less per replica — the sharded layer has no cache
  /// of its own.
  ServeConfig shard;
  /// Per-attempt timeout, hedging, retry and breaker knobs, applied to every
  /// shard client (see ShardClientConfig for the semantics of each).
  double shard_timeout_ms = 0.0;
  double hedge_ms = 0.0;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  /// When true, a query whose coverage would be < 1 fails with the first
  /// failing shard's status instead of returning a partial result.
  bool require_full_coverage = false;

  Status Validate() const;
};

/// A batched answer from the sharded service. With every shard healthy,
/// `results` is bit-identical to the unsharded exhaustive service's answer,
/// `partial` is false and `coverage` is 1. When shards are exhausted (all
/// replicas down or timed out) and require_full_coverage is off, `results`
/// holds the exact top-k over the rows that did respond, `partial` is true
/// and `coverage` is the fraction of corpus rows that contributed.
struct ShardedQueryResult {
  std::vector<std::vector<ScoredHit>> results;  // Global ids, best first.
  bool partial = false;
  double coverage = 1.0;
};

/// Aggregated fan-out/fan-in counters since construction / ResetStats.
struct ShardedServeStats {
  int64_t requests = 0;        // QueryBatch calls.
  int64_t queries = 0;         // Query rows served.
  int64_t full_results = 0;    // Requests answered at coverage 1.
  int64_t partial_results = 0; // Requests answered at coverage < 1.
  int64_t failed = 0;          // Requests that returned an error.
  // Sums over the per-shard client stats (also available per shard below).
  int64_t retries = 0;
  int64_t hedges_fired = 0;
  int64_t hedges_won = 0;
  int64_t timeouts = 0;
  int64_t exhausted = 0;
  int64_t breaker_opens = 0;
  CoverageHistogram coverage;
  StageStats fanout;  // Wall time of the scatter+gather across shards.
  StageStats merge;   // Wall time of the global top-k merge.
  std::vector<ShardClientStats> shards;

  /// Multi-line human-readable snapshot for the CLI / bench output.
  std::string ToString() const;
};

/// Scale-out serving: partitions an embedding corpus across num_shards
/// RetrievalService shards (x num_replicas replicas each), fans every query
/// batch out to all shards in parallel, and merges the per-shard top-k
/// lists into a global top-k.
///
/// Determinism (see DESIGN.md, "Sharded serving and failover"): shard s
/// serves the contiguous corpus rows [s*chunk, min((s+1)*chunk, N)), so a
/// row's score against a query is computed by exactly the same dot-product
/// chain as in the unsharded service; the merge orders by (score desc,
/// global id asc) — the unsharded comparator — making the fan-in
/// bit-identical to the unsharded exhaustive answer whenever every shard
/// responds, at any shard count and any kernel thread count.
///
/// Fault tolerance: each shard is fronted by a ShardClient (per-replica
/// circuit breakers, bounded retries with deterministic backoff, optional
/// hedging). A shard that stays down degrades the answer to a partial
/// result with an honest `coverage` instead of failing the request, unless
/// require_full_coverage is set.
///
/// Thread safety: Query / QueryBatch / Snapshot / ResetStats may be called
/// concurrently.
class ShardedRetrievalService {
 public:
  /// Partitions the rows of `items` [N, D] and builds num_shards x
  /// num_replicas replica services, each validated by RetrievalService::
  /// Create. Fails on invalid config, num_shards > N, or a non-exhaustive
  /// shard backend.
  static StatusOr<std::unique_ptr<ShardedRetrievalService>> Create(
      Tensor items, const ShardedServeConfig& config);

  /// Builds the fan-out layer over caller-supplied replica transports:
  /// shards[s] holds the replica transports of shard s, which must serve
  /// the corpus rows *in shard order* (shard s's global offset is the sum
  /// of the preceding shards' sizes — exactly how Create partitions).
  /// Replicas of one shard must agree on size. This is how a remote
  /// topology is assembled (net::ConnectShardedService); the merge, the
  /// failover machinery and the bit-identity guarantee are oblivious to
  /// where the rows live. `config.num_shards` / `num_replicas` /
  /// `config.shard` are ignored — the topology and the per-replica
  /// services are the caller's.
  static StatusOr<std::unique_ptr<ShardedRetrievalService>>
  CreateFromTransports(
      std::vector<std::vector<std::shared_ptr<ShardTransport>>> shards,
      int64_t dim, const ShardedServeConfig& config);

  /// Top-k hits for each row of `queries` [B, D] against the whole corpus,
  /// global ids, most similar first. `options.deadline_ms` bounds the whole
  /// fan-out (each shard client additionally enforces shard_timeout_ms per
  /// attempt). Fails with the first failing shard's status when
  /// require_full_coverage is set and any shard is exhausted, and with
  /// kUnavailable when *no* shard responded (there is no answer to degrade
  /// to).
  StatusOr<ShardedQueryResult> QueryBatchWithOptions(
      const Tensor& queries, int64_t k, const QueryOptions& options);

  /// Deadline-free conveniences.
  StatusOr<ShardedQueryResult> QueryBatch(const Tensor& queries, int64_t k);
  StatusOr<ShardedQueryResult> Query(const Tensor& query, int64_t k);

  ShardedServeStats Snapshot() const;
  void ResetStats();

  int64_t size() const { return rows_; }
  int64_t dim() const { return dim_; }
  int64_t num_shards() const {
    return static_cast<int64_t>(shards_.size());
  }
  const ShardedServeConfig& config() const { return config_; }

 private:
  ShardedRetrievalService(ShardedServeConfig config, int64_t rows,
                          int64_t dim,
                          std::vector<std::unique_ptr<ShardClient>> shards);

  ShardedServeConfig config_;
  int64_t rows_ = 0;
  int64_t dim_ = 0;
  std::vector<std::unique_ptr<ShardClient>> shards_;

  mutable std::mutex mu_;  // Guards stats_ (shard clients self-synchronise).
  ShardedServeStats stats_;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_SHARDED_SERVICE_H_
