#include "serve/serve_stats.h"

#include <algorithm>
#include <cstdio>

namespace adamine::serve {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

namespace {

/// Bucket b holds observations in [2^(b-1), 2^b) microseconds (bucket 0:
/// anything below 1us; the last bucket also absorbs overflow).
int BucketOf(double ms) {
  const double us = ms * 1000.0;
  int b = 0;
  double bound = 1.0;
  while (b < StageStats::kBuckets - 1 && us >= bound) {
    bound *= 2.0;
    ++b;
  }
  return b;
}

double BucketUpperMs(int b) {
  double bound = 1.0;  // Upper bound of bucket 0, in microseconds.
  for (int i = 0; i < b; ++i) bound *= 2.0;
  return bound / 1000.0;
}

}  // namespace

void StageStats::Record(double ms) {
  ++count;
  total_ms += ms;
  max_ms = std::max(max_ms, ms);
  ++buckets[static_cast<size_t>(BucketOf(ms))];
}

double StageStats::PercentileMs(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Smallest bucket whose cumulative count covers the percentile.
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets[static_cast<size_t>(b)];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return BucketUpperMs(b);
    }
  }
  return max_ms;
}

void CoverageHistogram::Record(double coverage) {
  if (coverage < 0.0) coverage = 0.0;
  if (coverage > 1.0) coverage = 1.0;
  ++count;
  total += coverage;
  const int b = std::min(kBuckets - 1, static_cast<int>(coverage * 10.0));
  ++buckets[static_cast<size_t>(b)];
}

std::string CoverageHistogram::ToString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "cov mean %.3f [", mean());
  std::string out = head;
  for (int b = 0; b < kBuckets; ++b) {
    if (b > 0) out += " ";
    out += std::to_string(buckets[static_cast<size_t>(b)]);
  }
  out += "]";
  return out;
}

std::string ServeStats::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "queries %lld  batches %lld  cache hit-rate %.1f%% "
                "(%lld hits / %lld misses)\n",
                static_cast<long long>(queries),
                static_cast<long long>(batches), 100.0 * cache_hit_rate(),
                static_cast<long long>(cache_hits),
                static_cast<long long>(cache_misses));
  out += line;
  std::snprintf(line, sizeof(line),
                "health %s  probes %lld  shed %lld  queue-timeouts %lld  "
                "deadline-misses %lld  dial %lld down / %lld up\n",
                HealthStateName(health), static_cast<long long>(probes),
                static_cast<long long>(shed),
                static_cast<long long>(queue_timeouts),
                static_cast<long long>(deadline_misses),
                static_cast<long long>(probe_dial_downs),
                static_cast<long long>(probe_dial_ups));
  out += line;
  // Immutable backends keep the classic three-line header; the mutation
  // line only appears once there is a mutable backend behind the service
  // (any gauge nonzero, or the read-only latch set).
  const bool mutating =
      mutation.mem_rows != 0 || mutation.mem_bytes != 0 ||
      mutation.seal_lag != 0 || mutation.backpressure_sheds != 0 ||
      mutation.wal_transient_failures != 0 || mutation.scrubs != 0 ||
      mutation.quarantined_segments != 0 || mutation.quarantined_rows != 0 ||
      mutation.last_scrub_unix_ms != 0 || mutation.read_only;
  if (mutating) {
    std::snprintf(line, sizeof(line),
                  "mutate mem %lld rows / %lld B  seal-lag %lld  "
                  "sheds %lld  wal-transients %lld%s\n",
                  static_cast<long long>(mutation.mem_rows),
                  static_cast<long long>(mutation.mem_bytes),
                  static_cast<long long>(mutation.seal_lag),
                  static_cast<long long>(mutation.backpressure_sheds),
                  static_cast<long long>(mutation.wal_transient_failures),
                  mutation.read_only ? "  READ-ONLY" : "");
    out += line;
    std::snprintf(line, sizeof(line),
                  "scrub  passes %lld  quarantined %lld segs / %lld rows  "
                  "last %lld\n",
                  static_cast<long long>(mutation.scrubs),
                  static_cast<long long>(mutation.quarantined_segments),
                  static_cast<long long>(mutation.quarantined_rows),
                  static_cast<long long>(mutation.last_scrub_unix_ms));
    out += line;
  }
  const auto stage = [&](const char* name, const StageStats& s) {
    std::snprintf(line, sizeof(line),
                  "%-6s count %-7lld mean %8.3f ms  p50 %8.3f ms  "
                  "p95 %8.3f ms  max %8.3f ms\n",
                  name, static_cast<long long>(s.count), s.mean_ms(),
                  s.PercentileMs(50), s.PercentileMs(95), s.max_ms);
    out += line;
  };
  stage("embed", embed);
  stage("score", score);
  stage("rank", rank);
  return out;
}

}  // namespace adamine::serve
