#include "serve/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::serve {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

TimePoint DeadlineOf(const QueryOptions& options) {
  if (options.deadline_ms <= 0.0) return TimePoint::max();
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double, std::milli>(options.deadline_ms));
}

double MillisSince(TimePoint start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The unsharded exhaustive ranking order: best score first, global row id
/// breaking ties. Because every (query, item) dot product is computed by
/// the same chain on every shard as in the unsharded service, sorting the
/// union of per-shard top-k lists with this comparator reproduces the
/// unsharded answer bit for bit.
bool BetterHit(const ScoredHit& a, const ScoredHit& b) {
  return a.score > b.score || (a.score == b.score && a.index < b.index);
}

}  // namespace

Status ShardedServeConfig::Validate() const {
  if (num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (num_replicas <= 0) {
    return Status::InvalidArgument("num_replicas must be positive");
  }
  if (shard.backend != Backend::kExhaustive &&
      shard.backend != Backend::kScalar) {
    return Status::InvalidArgument(
        "sharded serving requires an exact shard backend (scalar or "
        "exhaustive) — the merge re-ranks per-hit scores globally, and an "
        "approximate shard would silently change the answer");
  }
  ADAMINE_RETURN_IF_ERROR(shard.Validate());
  ShardClientConfig client;
  client.shard_timeout_ms = shard_timeout_ms;
  client.hedge_ms = hedge_ms;
  client.retry = retry;
  client.breaker = breaker;
  return client.Validate();
}

std::string ShardedServeStats::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests %lld  queries %lld  full %lld  partial %lld  "
                "failed %lld\n",
                static_cast<long long>(requests),
                static_cast<long long>(queries),
                static_cast<long long>(full_results),
                static_cast<long long>(partial_results),
                static_cast<long long>(failed));
  out += line;
  std::snprintf(line, sizeof(line),
                "retries %lld  hedges %lld fired / %lld won  timeouts %lld  "
                "exhausted %lld  breaker-opens %lld\n",
                static_cast<long long>(retries),
                static_cast<long long>(hedges_fired),
                static_cast<long long>(hedges_won),
                static_cast<long long>(timeouts),
                static_cast<long long>(exhausted),
                static_cast<long long>(breaker_opens));
  out += line;
  out += coverage.ToString();
  out += "\n";
  const auto stage = [&](const char* name, const StageStats& s) {
    std::snprintf(line, sizeof(line),
                  "%-6s count %-7lld mean %8.3f ms  p50 %8.3f ms  "
                  "p95 %8.3f ms  max %8.3f ms\n",
                  name, static_cast<long long>(s.count), s.mean_ms(),
                  s.PercentileMs(50), s.PercentileMs(95), s.max_ms);
    out += line;
  };
  stage("fanout", fanout);
  stage("merge", merge);
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardClientStats& shard = shards[s];
    std::string breakers;
    for (const CircuitBreakerStats& replica : shard.replicas) {
      if (!breakers.empty()) breakers += " ";
      breakers += BreakerStateName(replica.state);
    }
    std::snprintf(line, sizeof(line),
                  "shard %-3zu queries %-7lld retries %-5lld hedges %lld/%lld"
                  "  timeouts %-5lld exhausted %-5lld breakers [%s]\n",
                  s, static_cast<long long>(shard.queries),
                  static_cast<long long>(shard.retries),
                  static_cast<long long>(shard.hedges_fired),
                  static_cast<long long>(shard.hedges_won),
                  static_cast<long long>(shard.timeouts),
                  static_cast<long long>(shard.exhausted), breakers.c_str());
    out += line;
  }
  return out;
}

ShardedRetrievalService::ShardedRetrievalService(
    ShardedServeConfig config, int64_t rows, int64_t dim,
    std::vector<std::unique_ptr<ShardClient>> shards)
    : config_(std::move(config)),
      rows_(rows),
      dim_(dim),
      shards_(std::move(shards)) {}

StatusOr<std::unique_ptr<ShardedRetrievalService>>
ShardedRetrievalService::Create(Tensor items, const ShardedServeConfig& config) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  if (items.ndim() != 2) {
    return Status::InvalidArgument("items must be 2-D [N, D]");
  }
  const int64_t rows = items.rows();
  const int64_t dim = items.cols();
  if (config.num_shards > rows) {
    return Status::InvalidArgument(
        "num_shards (" + std::to_string(config.num_shards) +
        ") exceeds the corpus row count (" + std::to_string(rows) + ")");
  }

  // Every replica runs cache-less: the sharded merge path bypasses the LRU
  // cache anyway (QueryBatchScored), so per-replica caches would only burn
  // memory.
  ServeConfig shard_config = config.shard;
  shard_config.cache_capacity = 0;
  shard_config.cache_capacity_bytes = 0;

  ShardClientConfig client_config;
  client_config.shard_timeout_ms = config.shard_timeout_ms;
  client_config.hedge_ms = config.hedge_ms;
  client_config.retry = config.retry;
  client_config.breaker = config.breaker;

  // Balanced contiguous chunks: shard s serves corpus rows
  // [s*N/S, (s+1)*N/S), so shard sizes differ by at most one row and no
  // shard is ever empty for num_shards <= rows (a ceil-based chunk would
  // starve trailing shards, e.g. 10 rows across 7 shards). Local id i on
  // shard s is corpus row s*N/S + i, so per-shard result order equals the
  // global order restricted to the shard.
  std::vector<std::unique_ptr<ShardClient>> shards;
  shards.reserve(static_cast<size_t>(config.num_shards));
  for (int64_t s = 0; s < config.num_shards; ++s) {
    const int64_t r0 = s * rows / config.num_shards;
    const int64_t r1 = (s + 1) * rows / config.num_shards;
    Tensor shard_items = SliceRows(items, r0, r1);
    std::vector<std::shared_ptr<RetrievalService>> replicas;
    replicas.reserve(static_cast<size_t>(config.num_replicas));
    for (int64_t r = 0; r < config.num_replicas; ++r) {
      auto replica = RetrievalService::Create(shard_items, shard_config);
      if (!replica.ok()) return replica.status();
      replicas.push_back(std::move(replica).value());
    }
    shards.push_back(std::make_unique<ShardClient>(s, r0, std::move(replicas),
                                                   client_config));
  }
  return std::unique_ptr<ShardedRetrievalService>(new ShardedRetrievalService(
      config, rows, dim, std::move(shards)));
}

StatusOr<std::unique_ptr<ShardedRetrievalService>>
ShardedRetrievalService::CreateFromTransports(
    std::vector<std::vector<std::shared_ptr<ShardTransport>>> shards,
    int64_t dim, const ShardedServeConfig& config) {
  if (shards.empty()) {
    return Status::InvalidArgument("transport topology has no shards");
  }
  if (dim <= 0) {
    return Status::InvalidArgument("transport topology: dim must be > 0");
  }
  ShardClientConfig client_config;
  client_config.shard_timeout_ms = config.shard_timeout_ms;
  client_config.hedge_ms = config.hedge_ms;
  client_config.retry = config.retry;
  client_config.breaker = config.breaker;
  ADAMINE_RETURN_IF_ERROR(client_config.Validate());

  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.reserve(shards.size());
  int64_t offset = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    std::vector<std::shared_ptr<ShardTransport>>& replicas = shards[s];
    if (replicas.empty()) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " has no replica transports");
    }
    for (const auto& replica : replicas) {
      if (replica == nullptr) {
        return Status::InvalidArgument("shard " + std::to_string(s) +
                                       ": null replica transport");
      }
      if (replica->size() != replicas.front()->size()) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) + ": replica sizes disagree (" +
            replica->description() + " serves " +
            std::to_string(replica->size()) + " rows, expected " +
            std::to_string(replicas.front()->size()) + ")");
      }
    }
    const int64_t size = replicas.front()->size();
    clients.push_back(std::make_unique<ShardClient>(
        static_cast<int64_t>(s), offset, std::move(replicas),
        client_config));
    offset += size;
  }
  ShardedServeConfig resolved = config;
  resolved.num_shards = static_cast<int64_t>(shards.size());
  return std::unique_ptr<ShardedRetrievalService>(new ShardedRetrievalService(
      std::move(resolved), offset, dim, std::move(clients)));
}

StatusOr<ShardedQueryResult> ShardedRetrievalService::QueryBatchWithOptions(
    const Tensor& queries, int64_t k, const QueryOptions& options) {
  ADAMINE_CHECK_EQ(queries.ndim(), 2);
  ADAMINE_CHECK_EQ(queries.cols(), dim_);
  ADAMINE_CHECK_GT(k, 0);
  const int64_t b = queries.rows();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    stats_.queries += b;
  }
  const TimePoint deadline = DeadlineOf(options);
  const int64_t num = num_shards();

  // Scatter: one coordinator thread per shard (each shard client runs its
  // own attempt threads underneath). Slots are pre-sized, so the workers
  // never touch shared containers.
  const TimePoint fanout_start = Clock::now();
  std::vector<Status> failures(static_cast<size_t>(num), Status::Ok());
  std::vector<std::vector<std::vector<ScoredHit>>> shard_hits(
      static_cast<size_t>(num));
  std::vector<char> responded(static_cast<size_t>(num), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num));
  for (int64_t s = 0; s < num; ++s) {
    workers.emplace_back([this, s, &queries, k, deadline, &failures,
                          &shard_hits, &responded] {
      auto got = shards_[static_cast<size_t>(s)]->Query(queries, k, deadline);
      if (got.ok()) {
        shard_hits[static_cast<size_t>(s)] = std::move(got).value();
        responded[static_cast<size_t>(s)] = 1;
      } else {
        failures[static_cast<size_t>(s)] = got.status();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double fanout_ms = MillisSince(fanout_start);

  // A non-transient failure is a caller bug (every shard would fail the
  // same way): propagate the lowest-index one deterministically.
  for (int64_t s = 0; s < num; ++s) {
    const Status& status = failures[static_cast<size_t>(s)];
    if (!status.ok() && !status.IsTransient()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
      return status;
    }
  }

  int64_t covered_rows = 0;
  int64_t first_failed = -1;
  for (int64_t s = 0; s < num; ++s) {
    if (responded[static_cast<size_t>(s)]) {
      covered_rows += shards_[static_cast<size_t>(s)]->size();
    } else if (first_failed < 0) {
      first_failed = s;
    }
  }
  const double coverage =
      rows_ == 0 ? 1.0
                 : static_cast<double>(covered_rows) /
                       static_cast<double>(rows_);
  if (covered_rows == 0) {
    // Nothing responded; there is no answer to degrade to.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    stats_.fanout.Record(fanout_ms);
    return failures[static_cast<size_t>(first_failed)];
  }
  if (first_failed >= 0 && config_.require_full_coverage) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    stats_.fanout.Record(fanout_ms);
    return failures[static_cast<size_t>(first_failed)];
  }

  // Gather: per query row, merge the per-shard top-k lists into the global
  // top-k. Any corpus-wide top-k item is within its own shard's top-k, so
  // sorting the union with the unsharded comparator is exact.
  const TimePoint merge_start = Clock::now();
  ShardedQueryResult out;
  out.partial = first_failed >= 0;
  out.coverage = coverage;
  out.results.resize(static_cast<size_t>(b));
  std::vector<ScoredHit> pool;
  for (int64_t row = 0; row < b; ++row) {
    pool.clear();
    for (int64_t s = 0; s < num; ++s) {
      if (!responded[static_cast<size_t>(s)]) continue;
      const std::vector<ScoredHit>& hits =
          shard_hits[static_cast<size_t>(s)][static_cast<size_t>(row)];
      pool.insert(pool.end(), hits.begin(), hits.end());
    }
    const int64_t take = std::min<int64_t>(k,
                                           static_cast<int64_t>(pool.size()));
    std::partial_sort(pool.begin(), pool.begin() + take, pool.end(),
                      BetterHit);
    out.results[static_cast<size_t>(row)]
        .assign(pool.begin(), pool.begin() + take);
  }
  const double merge_ms = MillisSince(merge_start);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.partial) {
      ++stats_.partial_results;
    } else {
      ++stats_.full_results;
    }
    stats_.coverage.Record(coverage);
    stats_.fanout.Record(fanout_ms);
    stats_.merge.Record(merge_ms);
  }
  return out;
}

StatusOr<ShardedQueryResult> ShardedRetrievalService::QueryBatch(
    const Tensor& queries, int64_t k) {
  return QueryBatchWithOptions(queries, k, QueryOptions{});
}

StatusOr<ShardedQueryResult> ShardedRetrievalService::Query(
    const Tensor& query, int64_t k) {
  ADAMINE_CHECK_EQ(query.numel(), dim_);
  Tensor batch({1, dim_});
  std::copy(query.data(), query.data() + dim_, batch.data());
  return QueryBatchWithOptions(batch, k, QueryOptions{});
}

ShardedServeStats ShardedRetrievalService::Snapshot() const {
  ShardedServeStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  // Per-shard counters are pulled fresh from the clients (they synchronise
  // themselves), then rolled up into the fleet-wide sums.
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardClientStats stats = shard->Snapshot();
    out.retries += stats.retries;
    out.hedges_fired += stats.hedges_fired;
    out.hedges_won += stats.hedges_won;
    out.timeouts += stats.timeouts;
    out.exhausted += stats.exhausted;
    for (const CircuitBreakerStats& replica : stats.replicas) {
      out.breaker_opens += replica.opens;
    }
    out.shards.push_back(std::move(stats));
  }
  return out;
}

void ShardedRetrievalService::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = ShardedServeStats{};
  }
  for (const auto& shard : shards_) shard->ResetStats();
}

}  // namespace adamine::serve
