#include "serve/admission.h"

#include <algorithm>

#include "util/fault.h"

namespace adamine::serve {

AdmissionController::AdmissionController(int64_t max_inflight,
                                         int64_t max_queue)
    : max_inflight_(max_inflight), max_queue_(max_queue) {}

Status AdmissionController::Admit(TimePoint deadline) {
  if (fault::ShouldFail(fault::kServeQueueReject)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
    return Status::Unavailable("injected admission reject");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled()) {
    ++stats_.admitted;
    ++inflight_;
    stats_.inflight_peak = std::max(stats_.inflight_peak, inflight_);
    return Status::Ok();
  }
  if (inflight_ < max_inflight_) {
    ++inflight_;
    ++stats_.admitted;
    stats_.inflight_peak = std::max(stats_.inflight_peak, inflight_);
    return Status::Ok();
  }
  if (queued_ >= max_queue_) {
    ++stats_.shed;
    return Status::Unavailable(
        "service overloaded: " + std::to_string(inflight_) + " in flight, " +
        std::to_string(queued_) + " queued");
  }
  ++queued_;
  stats_.queue_peak = std::max(stats_.queue_peak, queued_);
  const auto slot_available = [this] { return inflight_ < max_inflight_; };
  bool got_slot = true;
  if (deadline == TimePoint::max()) {
    // wait_until with time_point::max can overflow the clock conversion on
    // some standard libraries; an unbounded wait is what is meant anyway.
    slot_free_.wait(lock, slot_available);
  } else {
    got_slot = slot_free_.wait_until(lock, deadline, slot_available);
  }
  --queued_;
  if (!got_slot) {
    ++stats_.queue_timeouts;
    return Status::DeadlineExceeded("deadline expired while queued");
  }
  ++inflight_;
  ++stats_.admitted;
  stats_.inflight_peak = std::max(stats_.inflight_peak, inflight_);
  return Status::Ok();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  slot_free_.notify_one();
}

int64_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int64_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

AdmissionStats AdmissionController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AdmissionController::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = AdmissionStats();
}

}  // namespace adamine::serve
