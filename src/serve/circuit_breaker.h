#ifndef ADAMINE_SERVE_CIRCUIT_BREAKER_H_
#define ADAMINE_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace adamine::serve {

/// Breaker state machine (see DESIGN.md, "Sharded serving and failover"):
/// kClosed passes traffic and counts consecutive transient failures;
/// kOpen fails fast — the replica gets no traffic until `open_ms` elapses;
/// kHalfOpen lets exactly one probe through, whose outcome either closes
/// the breaker (success) or re-opens it for another `open_ms` (failure).
enum class BreakerState {
  kClosed,
  kOpen,
  kHalfOpen,
};

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerConfig {
  /// Consecutive transient failures that trip kClosed -> kOpen. Transience
  /// is the caller's call (Status::IsTransient); non-transient errors must
  /// not be fed to the breaker — they say nothing about replica health.
  int64_t failure_threshold = 3;
  /// How long an open breaker rejects traffic before allowing the
  /// half-open probe.
  double open_ms = 100.0;

  Status Validate() const;
};

/// Counters and current state of one replica's breaker, for stats
/// snapshots.
struct CircuitBreakerStats {
  BreakerState state = BreakerState::kClosed;
  int64_t consecutive_failures = 0;
  int64_t opens = 0;       // kClosed/kHalfOpen -> kOpen transitions.
  int64_t half_opens = 0;  // kOpen -> kHalfOpen transitions.
  int64_t closes = 0;      // kHalfOpen -> kClosed transitions.
};

/// Per-shard-replica circuit breaker. The ShardClient asks Allow() before
/// every attempt and reports the outcome with OnSuccess / OnFailure; time
/// is passed in by the caller so the state machine is unit-testable without
/// sleeping.
///
/// Thread safety: all methods may be called concurrently (a replica is
/// shared by every in-flight query of its shard).
class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(const CircuitBreakerConfig& config);

  /// True if an attempt may be sent to the replica now. An open breaker
  /// whose open_ms has elapsed transitions to half-open and admits exactly
  /// one probe; further Allow() calls fail until that probe resolves via
  /// OnSuccess / OnFailure — or ReleaseProbe when the probe attempt ends
  /// without a health verdict. When `probe` is non-null it is set to
  /// whether this admission consumed the half-open probe slot, so the
  /// caller can guarantee the slot is eventually resolved.
  bool Allow(TimePoint now, bool* probe = nullptr);

  /// The replica answered: resets the failure streak; a half-open probe
  /// success closes the breaker.
  void OnSuccess();

  /// The replica failed transiently (or timed out): extends the failure
  /// streak, tripping the breaker at failure_threshold; a half-open probe
  /// failure re-opens for another open_ms.
  void OnFailure(TimePoint now);

  /// Frees the half-open probe slot without a verdict. For probe attempts
  /// that end in a non-transient error (which says nothing about replica
  /// health): the breaker stays half-open and the next Allow() may send a
  /// fresh probe, instead of the slot staying occupied forever.
  void ReleaseProbe();

  BreakerState state() const;
  CircuitBreakerStats Snapshot() const;

 private:
  const CircuitBreakerConfig config_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int64_t consecutive_failures_ = 0;
  bool probe_inflight_ = false;  // kHalfOpen: the single probe is out.
  TimePoint open_until_{};
  int64_t opens_ = 0;
  int64_t half_opens_ = 0;
  int64_t closes_ = 0;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_CIRCUIT_BREAKER_H_
