#include "serve/circuit_breaker.h"

namespace adamine::serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status CircuitBreakerConfig::Validate() const {
  if (failure_threshold <= 0) {
    return Status::InvalidArgument("breaker failure_threshold must be > 0");
  }
  if (open_ms < 0.0) {
    return Status::InvalidArgument("breaker open_ms must be >= 0");
  }
  return Status::Ok();
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config) {}

bool CircuitBreaker::Allow(TimePoint now, bool* probe) {
  if (probe != nullptr) *probe = false;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) return false;
      state_ = BreakerState::kHalfOpen;
      ++half_opens_;
      probe_inflight_ = true;
      if (probe != nullptr) *probe = true;
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time: extra traffic keeps failing fast until the
      // outstanding probe's verdict is in.
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      if (probe != nullptr) *probe = true;
      return true;
  }
  return false;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_inflight_ = false;
    ++closes_;
  }
}

void CircuitBreaker::OnFailure(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the replica is still sick; back to open for
    // another cool-off window.
    state_ = BreakerState::kOpen;
    probe_inflight_ = false;
    open_until_ =
        now + std::chrono::microseconds(
                  static_cast<int64_t>(config_.open_ms * 1000.0));
    ++opens_;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_ =
        now + std::chrono::microseconds(
                  static_cast<int64_t>(config_.open_ms * 1000.0));
    ++opens_;
  }
  // A failure reported while already open (an attempt that was in flight
  // when the breaker tripped) changes nothing: the cool-off clock is not
  // re-extended by stragglers.
}

void CircuitBreaker::ReleaseProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) probe_inflight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreakerStats CircuitBreaker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CircuitBreakerStats stats;
  stats.state = state_;
  stats.consecutive_failures = consecutive_failures_;
  stats.opens = opens_;
  stats.half_opens = half_opens_;
  stats.closes = closes_;
  return stats;
}

}  // namespace adamine::serve
