// The scoring-backend registry and the built-in engines. The scalar
// reference loops in this file are single ascending float accumulation
// chains, exactly the per-element order of kernel::Gemm; the TU is
// compiled with -O3;-ffp-contract=off (src/CMakeLists.txt) so the
// compiler cannot fuse them into FMAs, keeping every backend bit-identical
// to the reference (see DESIGN.md, "Backend registry").

#include "serve/backend.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "kernel/gemm.h"
#include "kernel/kernel.h"
#include "mutate/mutable_backend.h"
#include "quant/quantized_backend.h"
#include "serve/sharded_service.h"
#include "util/stopwatch.h"

namespace adamine::serve {

float DotAscending(const float* a, const float* b, int64_t d) {
  float acc = 0.0f;
  for (int64_t j = 0; j < d; ++j) acc += a[j] * b[j];
  return acc;
}

namespace {

Status ValidateBackendItems(const Tensor& items) {
  if (!items.defined() || items.ndim() != 2) {
    return Status::InvalidArgument("backend items must be 2-D [N, D]");
  }
  if (items.cols() <= 0) {
    return Status::InvalidArgument("backend items need dim > 0");
  }
  return Status::Ok();
}

/// The reference implementation every other backend is golden-diffed
/// against: per-query scalar dot products, no kernel-pool batching, ranked
/// by (score desc, global id asc).
class ScalarBackend final : public ScoringBackend {
 public:
  explicit ScalarBackend(Tensor items) : items_(std::move(items)) {}

  const char* name() const override { return "scalar"; }
  int64_t size() const override { return items_.rows(); }
  int64_t dim() const override { return items_.cols(); }

 protected:
  StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                     const Filter* /*filter*/, int64_t k,
                                     const QueryOptions& /*options*/)
      override {
    const int64_t b = batch.queries.rows();
    const int64_t d = items_.cols();
    const int64_t n = items_.rows();
    const int64_t take = std::min(k, n);
    TopKResult out;
    out.hits.resize(static_cast<size_t>(b));
    Stopwatch watch;
    std::vector<float> sims(static_cast<size_t>(n));
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < b; ++i) {
      const float* query = batch.queries.data() + i * d;
      for (int64_t r = 0; r < n; ++r) {
        sims[static_cast<size_t>(r)] =
            DotAscending(items_.data() + r * d, query, d);
      }
      std::iota(order.begin(), order.end(), 0);
      std::partial_sort(order.begin(), order.begin() + take, order.end(),
                        [&sims](int64_t a, int64_t b2) {
                          return sims[static_cast<size_t>(a)] >
                                     sims[static_cast<size_t>(b2)] ||
                                 (sims[static_cast<size_t>(a)] ==
                                      sims[static_cast<size_t>(b2)] &&
                                  a < b2);
                        });
      std::vector<ScoredHit>& hits = out.hits[static_cast<size_t>(i)];
      hits.reserve(static_cast<size_t>(take));
      for (int64_t j = 0; j < take; ++j) {
        const int64_t id = order[static_cast<size_t>(j)];
        hits.push_back(ScoredHit{id, sims[static_cast<size_t>(id)]});
      }
    }
    out.score_ms = watch.ElapsedMillis();  // Scoring and ranking are fused.
    return out;
  }

 private:
  Tensor items_;  // [N, D]
};

/// Exhaustive cosine kNN: one tiled GEMM of the query batch against every
/// item, then per-query top-k over the kernel pool. Exact.
class ExhaustiveBackend final : public ScoringBackend {
 public:
  explicit ExhaustiveBackend(Tensor items) : items_(std::move(items)) {}

  const char* name() const override { return "exhaustive"; }
  int64_t size() const override { return items_.rows(); }
  int64_t dim() const override { return items_.cols(); }

 protected:
  StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                     const Filter* /*filter*/, int64_t k,
                                     const QueryOptions& /*options*/)
      override {
    const int64_t m = batch.queries.rows();
    const int64_t d = items_.cols();
    const int64_t n = items_.rows();
    TopKResult out;
    Stopwatch watch;
    Tensor sims({m, n});
    kernel::Gemm(batch.queries.data(), d, false, items_.data(), d, true, m,
                 n, d, sims.data());
    out.score_ms = watch.ElapsedMillis();
    watch.Restart();
    const int64_t take = std::min(k, n);
    out.hits.resize(static_cast<size_t>(m));
    kernel::ParallelFor(m, kernel::kRowGrain, [&](int64_t i0, int64_t i1) {
      std::vector<int64_t> order(static_cast<size_t>(n));
      for (int64_t i = i0; i < i1; ++i) {
        const float* row = sims.data() + i * n;
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(order.begin(), order.begin() + take, order.end(),
                          [row](int64_t a, int64_t b) {
                            return row[a] > row[b] ||
                                   (row[a] == row[b] && a < b);
                          });
        std::vector<ScoredHit>& hits = out.hits[static_cast<size_t>(i)];
        hits.reserve(static_cast<size_t>(take));
        for (int64_t j = 0; j < take; ++j) {
          hits.push_back(ScoredHit{order[static_cast<size_t>(j)],
                                   row[order[static_cast<size_t>(j)]]});
        }
      }
    });
    out.rank_ms = watch.ElapsedMillis();
    return out;
  }

 private:
  Tensor items_;  // [N, D]
};

/// index::IvfIndex approximate search behind the backend seam. Owns the
/// runtime probe dial; exact (and bit-identical to the reference) when
/// every list is probed.
class IvfBackend final : public ScoringBackend {
 public:
  IvfBackend(index::IvfIndex index, int64_t dim)
      : index_(std::move(index)), dim_(dim), probes_(index_.num_probes()) {}

  const char* name() const override { return "ivf"; }
  int64_t size() const override { return index_.size(); }
  int64_t dim() const override { return dim_; }

  bool has_probes() const override { return true; }
  int64_t max_probes() const override { return index_.num_lists(); }

  Status SetProbes(int64_t probes) override {
    if (probes <= 0 || probes > index_.num_lists()) {
      return Status::InvalidArgument("need 0 < probes <= num_lists");
    }
    std::lock_guard<std::mutex> lock(mu_);
    probes_ = probes;
    return Status::Ok();
  }

  int64_t probes() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return probes_;
  }

  bool exact() const override { return probes() == index_.num_lists(); }

 protected:
  StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                     const Filter* /*filter*/, int64_t k,
                                     const QueryOptions& options) override {
    const int64_t effective =
        options.probes > 0 ? std::min(options.probes, index_.num_lists())
                           : probes();
    TopKResult out;
    Stopwatch watch;
    // The fused batched search (centroid scan, candidate GEMM, per-query
    // ranking) reports as one score stage; rank_ms stays fused.
    const auto scored =
        index_.QueryBatchScoredWithProbes(batch.queries, k, effective);
    out.score_ms = watch.ElapsedMillis();
    out.hits.resize(scored.size());
    for (size_t i = 0; i < scored.size(); ++i) {
      out.hits[i].reserve(scored[i].size());
      for (const auto& [score, id] : scored[i]) {
        out.hits[i].push_back(ScoredHit{id, score});
      }
    }
    return out;
  }

 private:
  index::IvfIndex index_;
  const int64_t dim_;
  mutable std::mutex mu_;  // Guards the probe dial.
  int64_t probes_;
};

/// The in-process sharded fan-out/fan-in behind the backend seam: the
/// corpus partitioned across exhaustive shards, merged by (score desc,
/// global id asc). Exact whenever every shard responds.
class ShardedBackend final : public ScoringBackend {
 public:
  explicit ShardedBackend(std::unique_ptr<ShardedRetrievalService> service)
      : service_(std::move(service)) {}

  const char* name() const override { return "sharded"; }
  int64_t size() const override { return service_->size(); }
  int64_t dim() const override { return service_->dim(); }

 protected:
  StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                     const Filter* /*filter*/, int64_t k,
                                     const QueryOptions& options) override {
    Stopwatch watch;
    QueryOptions fanout = options;
    fanout.probes = 0;  // Shards are exhaustive; no dial to pin.
    auto merged = service_->QueryBatchWithOptions(batch.queries, k, fanout);
    if (!merged.ok()) return merged.status();
    TopKResult out;
    out.hits = std::move(merged->results);
    out.score_ms = watch.ElapsedMillis();
    return out;
  }

 private:
  std::unique_ptr<ShardedRetrievalService> service_;
};

struct RegistryEntry {
  BackendFactory factory;
  BackendTraits traits;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, RegistryEntry> entries;  // Sorted by name.
};

/// The built-ins are registered on the registry's first access rather than
/// through per-TU static initializers: a static library drops the
/// initializers of unreferenced TUs, so self-registration from elsewhere
/// would silently vanish from binaries that never name those TUs.
Registry& GlobalRegistry() {
  static Registry& registry = *[]() {
    auto* r = new Registry();
    r->entries["scalar"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          return std::unique_ptr<ScoringBackend>(
              new ScalarBackend(config.items));
        },
        BackendTraits{}};
    r->entries["exhaustive"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          return std::unique_ptr<ScoringBackend>(
              new ExhaustiveBackend(config.items));
        },
        BackendTraits{}};
    r->entries["ivf"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          // Tensor copies alias the buffer, so the index shares the rows.
          auto index = index::IvfIndex::Build(config.items, config.ivf);
          if (!index.ok()) return index.status();
          return std::unique_ptr<ScoringBackend>(new IvfBackend(
              std::move(index).value(), config.items.cols()));
        },
        BackendTraits{/*has_probes=*/true, /*sharded=*/false}};
    r->entries["sharded"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          ShardedServeConfig sharded;
          sharded.num_shards = config.num_shards;
          sharded.num_replicas = config.num_replicas;
          sharded.shard.backend = Backend::kExhaustive;
          sharded.shard.cache_capacity = 0;
          auto service =
              ShardedRetrievalService::Create(config.items, sharded);
          if (!service.ok()) return service.status();
          return std::unique_ptr<ScoringBackend>(
              new ShardedBackend(std::move(service).value()));
        },
        BackendTraits{/*has_probes=*/false, /*sharded=*/true}};
    r->entries["quantized"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          // Two-stage int8 scan + exact rerank (src/quant/); registered
          // here rather than from its own TU so static-lib dead-stripping
          // cannot lose the entry.
          return quant::CreateQuantizedBackend(config);
        },
        BackendTraits{}};
    r->entries["mutable"] = {
        [](const BackendConfig& config)
            -> StatusOr<std::unique_ptr<ScoringBackend>> {
          ADAMINE_RETURN_IF_ERROR(ValidateBackendItems(config.items));
          // WAL-backed crash-safe live mutation (src/mutate/); like
          // quantized, registered here so dead-stripping cannot lose it.
          return mutate::CreateMutableBackend(config);
        },
        BackendTraits{}};
    return r;
  }();
  return registry;
}

/// Caller holds registry.mu.
std::string JoinRegisteredNames(const Registry& registry) {
  std::string names;
  for (const auto& [name, entry] : registry.entries) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

Status UnknownBackend(const std::string& name, const Registry& registry) {
  return Status::InvalidArgument("unknown backend '" + name +
                                 "'; registered backends: " +
                                 JoinRegisteredNames(registry));
}

}  // namespace

StatusOr<TopKResult> ScoringBackend::ScoreTopK(const QueryBatch& batch,
                                               const Filter* filter,
                                               int64_t k,
                                               const QueryOptions& options) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (filter != nullptr) {
    return Status::Unimplemented(
        std::string("backend '") + name() +
        "' does not support filtered retrieval yet (the predicate-pushdown "
        "seam is reserved; see DESIGN.md, \"Backend registry\")");
  }
  if (batch.empty()) return TopKResult{};  // Zero queries, zero rows.
  if (batch.queries.ndim() != 2) {
    return Status::InvalidArgument("queries must be 2-D [B, D]");
  }
  if (batch.queries.cols() != dim()) {
    return Status::InvalidArgument(
        "query dim " + std::to_string(batch.queries.cols()) +
        " does not match corpus dim " + std::to_string(dim()));
  }
  return ScoreTopKImpl(batch, filter, k, options);
}

Status ScoringBackend::SetProbes(int64_t /*probes*/) {
  return Status::FailedPrecondition(
      std::string("backend '") + name() +
      "' has no probe dial (probes apply only to backends with a coarse "
      "quantiser, e.g. ivf)");
}

StatusOr<int64_t> ScoringBackend::Add(const Tensor& /*row*/) {
  return Status::FailedPrecondition(
      std::string("backend '") + name() +
      "' is immutable (live mutation needs the mutable backend; see "
      "src/mutate/)");
}

Status ScoringBackend::Delete(int64_t /*id*/) {
  return Status::FailedPrecondition(
      std::string("backend '") + name() +
      "' is immutable (live mutation needs the mutable backend; see "
      "src/mutate/)");
}

Status RegisterBackend(const std::string& name, BackendFactory factory,
                       const BackendTraits& traits) {
  if (name.empty()) {
    return Status::InvalidArgument("backend name must be non-empty");
  }
  if (!factory) {
    return Status::InvalidArgument("backend '" + name +
                                   "' registered without a factory");
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.entries.count(name) != 0) {
    return Status::InvalidArgument("backend '" + name +
                                   "' is already registered");
  }
  registry.entries[name] = {std::move(factory), traits};
  return Status::Ok();
}

StatusOr<std::unique_ptr<ScoringBackend>> CreateBackend(
    const std::string& name, const BackendConfig& config) {
  BackendFactory factory;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.entries.find(name);
    if (it == registry.entries.end()) {
      return UnknownBackend(name, registry);
    }
    factory = it->second.factory;
  }
  // The factory runs outside the registry lock: building an index or
  // booting a remote topology may be slow, and a factory may itself
  // consult the registry.
  return factory(config);
}

std::vector<std::string> RegisteredBackendNames() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.entries.size());
  for (const auto& [name, entry] : registry.entries) names.push_back(name);
  return names;
}

StatusOr<std::string> CanonicalBackendName(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return UnknownBackend(name, registry);
  return it->first;
}

StatusOr<BackendTraits> TraitsOfBackend(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return UnknownBackend(name, registry);
  return it->second.traits;
}

}  // namespace adamine::serve
