#ifndef ADAMINE_SERVE_SERVE_STATS_H_
#define ADAMINE_SERVE_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace adamine::serve {

/// Per-stage latency accounting: count / total / max plus a fixed
/// power-of-two-microsecond histogram ([<1us, <2us, ..., <~2s, overflow])
/// cheap enough to update on every batch and rich enough for p50/p95
/// estimates in a stats snapshot.
struct StageStats {
  static constexpr int kBuckets = 22;

  int64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::array<int64_t, kBuckets> buckets{};

  void Record(double ms);

  double mean_ms() const { return count == 0 ? 0.0 : total_ms / count; }

  /// Upper bound (in ms) of the histogram bucket containing the p-th
  /// percentile observation, p in [0, 100]. 0 when nothing was recorded.
  double PercentileMs(double p) const;
};

/// One consistent snapshot of a RetrievalService's counters: stage
/// latencies for query embedding (recorded by the caller running the model
/// forward), similarity scoring, and top-k ranking, plus query/batch/cache
/// counters. For the IVF backend the score stage covers the whole batched
/// search (centroid scan, candidate scoring and per-query ranking are one
/// fused pass); the rank stage is populated by the exhaustive backend's
/// top-k selection.
struct ServeStats {
  int64_t queries = 0;       // Query rows served (cache hits included).
  int64_t batches = 0;       // Scoring micro-batches dispatched.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  StageStats embed;
  StageStats score;
  StageStats rank;

  double cache_hit_rate() const {
    const int64_t looked_up = cache_hits + cache_misses;
    return looked_up == 0 ? 0.0
                          : static_cast<double>(cache_hits) / looked_up;
  }

  /// Multi-line human-readable snapshot for the CLI / bench output.
  std::string ToString() const;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_SERVE_STATS_H_
