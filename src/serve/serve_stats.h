#ifndef ADAMINE_SERVE_SERVE_STATS_H_
#define ADAMINE_SERVE_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace adamine::serve {

/// Coarse service health, driven by the degradation controller (see
/// DESIGN.md, "Overload behavior"): kHealthy while serving at full
/// accuracy within the latency target, kDegraded while accuracy has been
/// dialled down to protect latency, kUnhealthy when the dial is at its
/// floor and the latency target is still being missed.
enum class HealthState {
  kHealthy,
  kDegraded,
  kUnhealthy,
};

const char* HealthStateName(HealthState state);

/// Per-stage latency accounting: count / total / max plus a fixed
/// power-of-two-microsecond histogram ([<1us, <2us, ..., <~2s, overflow])
/// cheap enough to update on every batch and rich enough for p50/p95
/// estimates in a stats snapshot.
struct StageStats {
  static constexpr int kBuckets = 22;

  int64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::array<int64_t, kBuckets> buckets{};

  void Record(double ms);

  double mean_ms() const { return count == 0 ? 0.0 : total_ms / count; }

  /// Upper bound (in ms) of the histogram bucket containing the p-th
  /// percentile observation, p in [0, 100]. 0 when nothing was recorded.
  double PercentileMs(double p) const;
};

/// Histogram of per-request corpus coverage for the sharded serving layer:
/// bucket i counts requests whose coverage fell in [i/10, (i+1)/10), with
/// full coverage (exactly 1.0) in the last bucket. Cheap enough to update
/// on every fan-in; rich enough to show whether degraded answers are rare
/// blips or the steady state.
struct CoverageHistogram {
  static constexpr int kBuckets = 11;

  int64_t count = 0;
  double total = 0.0;
  std::array<int64_t, kBuckets> buckets{};

  void Record(double coverage);

  double mean() const { return count == 0 ? 0.0 : total / count; }

  /// "cov mean 0.97 [0 0 ... 12]" — the one-line form used in snapshots.
  std::string ToString() const;
};

/// Mutable-backend pressure gauges (see DESIGN.md, "Resource pressure and
/// scrubbing"), surfaced through ServeStats so an operator sees
/// backpressure building (memtable growth, seal lag) before it turns into
/// sheds — and scrubber health (quarantines, last pass) before a restart
/// discovers rot the hard way. All zero on immutable backends.
struct MutationPressure {
  int64_t mem_rows = 0;
  int64_t mem_bytes = 0;
  int64_t seal_lag = 0;  // Un-sealed generations behind.
  int64_t backpressure_sheds = 0;    // Mutations refused kResourceExhausted.
  int64_t wal_transient_failures = 0;  // Rolled-back ENOSPC-class appends.
  int64_t scrubs = 0;
  int64_t quarantined_segments = 0;
  int64_t quarantined_rows = 0;
  int64_t last_scrub_unix_ms = 0;  // 0 = never scrubbed.
  bool read_only = false;          // The sticky latch: mutations refused.
};

/// One consistent snapshot of a RetrievalService's counters: stage
/// latencies for query embedding (recorded by the caller running the model
/// forward), similarity scoring, and top-k ranking, plus query/batch/cache
/// counters. For the IVF backend the score stage covers the whole batched
/// search (centroid scan, candidate scoring and per-query ranking are one
/// fused pass); the rank stage is populated by the exhaustive backend's
/// top-k selection.
struct ServeStats {
  int64_t queries = 0;       // Query rows served (cache hits included).
  int64_t batches = 0;       // Scoring micro-batches dispatched.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_bytes = 0;      // Current resident cache footprint.
  int64_t cache_evictions = 0;  // Entries dropped by either capacity limit.

  // Overload counters (see AdmissionStats and the degradation controller).
  int64_t admitted = 0;         // Requests granted a scoring slot.
  int64_t shed = 0;             // Rejected fast with kUnavailable.
  int64_t queue_timeouts = 0;   // Deadline expired while queued.
  int64_t deadline_misses = 0;  // Deadline expired during scoring.
  int64_t inflight_peak = 0;
  int64_t queue_peak = 0;
  int64_t probe_dial_downs = 0;  // Degradation steps taken / undone.
  int64_t probe_dial_ups = 0;
  int64_t probes = 0;  // Current probe dial (0 on the exhaustive backend).
  HealthState health = HealthState::kHealthy;

  /// Mutable-backend ingest pressure; all zero on immutable backends.
  MutationPressure mutation;

  StageStats embed;
  StageStats score;
  StageStats rank;

  double cache_hit_rate() const {
    const int64_t looked_up = cache_hits + cache_misses;
    return looked_up == 0 ? 0.0
                          : static_cast<double>(cache_hits) / looked_up;
  }

  /// Multi-line human-readable snapshot for the CLI / bench output.
  std::string ToString() const;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_SERVE_STATS_H_
