#ifndef ADAMINE_SERVE_SHARD_CLIENT_H_
#define ADAMINE_SERVE_SHARD_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/circuit_breaker.h"
#include "serve/retrieval_service.h"
#include "serve/shard_transport.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::serve {

/// Retry knobs for transient shard failures. Backoff grows exponentially
/// from backoff_base_ms, capped at backoff_max_ms, with *deterministic*
/// jitter: the jitter fraction is a hash of (jitter_seed, salt, retry), so
/// replays of the same workload back off identically while distinct shards
/// still desynchronise (no thundering retry herd).
struct RetryPolicy {
  /// Additional attempt rounds after the first (0 = never retry).
  int64_t retry_max = 2;
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  uint64_t jitter_seed = 0;

  Status Validate() const;

  /// Backoff before 0-based retry round `retry`, in [backoff/2, backoff)
  /// where backoff = min(base * 2^retry, max). `salt` (the shard index)
  /// decorrelates shards.
  double BackoffMs(int64_t retry, uint64_t salt) const;
};

struct ShardClientConfig {
  /// Per-attempt wait bound in ms; a replica that has not answered by then
  /// is treated as a transient failure (breaker feedback included) and the
  /// round moves on. 0 waits until the request deadline.
  double shard_timeout_ms = 0.0;
  /// Hedging: if the primary attempt has not answered after hedge_ms, fire
  /// one duplicate attempt at the next allowed replica and take whichever
  /// answers first. 0 disables hedging.
  double hedge_ms = 0.0;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;

  Status Validate() const;
};

/// Everything one shard's client decided since construction / ResetStats.
struct ShardClientStats {
  int64_t queries = 0;       // Fan-out calls received.
  int64_t retries = 0;       // Retry rounds entered (after backoff).
  int64_t hedges_fired = 0;  // Duplicate attempts launched.
  int64_t hedges_won = 0;    // Queries answered by the hedge, not the primary.
  int64_t timeouts = 0;      // Rounds that hit shard_timeout_ms.
  int64_t exhausted = 0;     // Queries that failed all replicas/rounds.
  std::vector<CircuitBreakerStats> replicas;  // Breaker per replica.
};

/// Fault-tolerant client for one shard: owns R replica ShardTransports
/// (all serving the same row range — in-process services, remote RPC
/// channels, or a mix) plus one circuit breaker per replica, and turns a
/// fan-out call into at most 1 + retry_max attempt rounds of
/// timeout-bounded, breaker-gated, optionally hedged replica queries (see
/// DESIGN.md, "Sharded serving and failover"). The failover machinery sees
/// only the transport interface, so a replica behind a TCP hop gets
/// exactly the same retry/hedge/breaker treatment as a local one.
///
/// Each attempt runs on its own thread so a wedged replica can never block
/// the caller past its timeout; abandoned attempts discard their results
/// but still deliver their outcome to their replica's circuit breaker
/// (releasing any half-open probe slot they held), and are joined
/// opportunistically, or at destruction at the latest — never detached, so
/// sanitizer runs see every thread retired.
///
/// Thread safety: Query / Snapshot / ResetStats may be called concurrently.
class ShardClient {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// `global_offset` maps this shard's local row ids back to corpus row
  /// ids (the shard serves corpus rows [global_offset, global_offset +
  /// size())). Replica configs, validation and construction are the
  /// owner's job (ShardedRetrievalService).
  ShardClient(int64_t shard_index, int64_t global_offset,
              std::vector<std::shared_ptr<ShardTransport>> replicas,
              const ShardClientConfig& config);

  /// Convenience: wraps each service in an InProcessShardTransport.
  ShardClient(int64_t shard_index, int64_t global_offset,
              std::vector<std::shared_ptr<RetrievalService>> replicas,
              const ShardClientConfig& config);

  /// Joins every attempt thread still in flight (bounded by the slowest
  /// armed stall / replica scoring, not by the caller's deadline).
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Runs `queries` [B, D] against the shard, returning per-row top-k hits
  /// with *global* row ids, most similar first. Transient replica failures
  /// (kUnavailable, kDeadlineExceeded — see Status::IsTransient) rotate to
  /// the next breaker-approved replica with backoff between rounds;
  /// anything else fails the call immediately (a corrupt query is corrupt
  /// on every replica). Returns the last transient error when all rounds
  /// fail — the shard is then "exhausted" and the fan-in layer decides
  /// whether partial coverage is acceptable.
  StatusOr<std::vector<std::vector<ScoredHit>>> Query(const Tensor& queries,
                                                      int64_t k,
                                                      TimePoint deadline);

  int64_t shard_index() const { return shard_index_; }
  int64_t global_offset() const { return global_offset_; }
  int64_t size() const { return size_; }
  int64_t num_replicas() const {
    return static_cast<int64_t>(replicas_.size());
  }

  ShardClientStats Snapshot() const;
  void ResetStats();

 private:
  /// One replica attempt, shared between its worker thread and the
  /// coordinating Query call. `completed`, `status`, `results`,
  /// `resolved` and `abandoned` are guarded by the owning QueryState's
  /// mutex. Every attempt resolves its replica's breaker exactly once:
  /// `resolved` marks that the verdict has been delivered — by the
  /// coordinator charging a timed-out round as a failure, by the
  /// coordinator consuming the outcome, or by the worker thread itself
  /// when the coordinator returned first and set `abandoned` (a hedge
  /// loser, or any attempt in flight at an early return). Without the
  /// abandonment path, an attempt holding a breaker's half-open probe
  /// slot would leave the slot occupied forever. `probe` records whether
  /// this attempt's Allow() consumed that slot.
  struct Attempt {
    int64_t replica = 0;
    bool hedge = false;
    bool probe = false;
    bool completed = false;
    bool resolved = false;
    bool abandoned = false;
    Status status;
    std::vector<std::vector<ScoredHit>> results;
  };

  /// Per-Query rendezvous: attempt threads push themselves onto `done` and
  /// signal; the coordinator consumes under the same mutex. Heap-allocated
  /// and shared so attempts abandoned by a timed-out round can still land
  /// safely after Query returned.
  struct QueryState {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::shared_ptr<Attempt>> done;
  };

  /// The retry/hedge round loop behind Query. Factored out so Query can
  /// resolve outstanding attempts on *every* return path.
  StatusOr<std::vector<std::vector<ScoredHit>>> QueryRounds(
      const Tensor& queries, int64_t k, TimePoint deadline,
      const std::shared_ptr<QueryState>& state,
      std::vector<std::shared_ptr<Attempt>>* inflight);

  /// Launches one attempt thread against `replica` and registers it with
  /// the reaper. `attempt_deadline` bounds the replica's own scoring;
  /// `probe` says whether this attempt holds its breaker's half-open
  /// probe slot.
  std::shared_ptr<Attempt> Launch(const std::shared_ptr<QueryState>& state,
                                  int64_t replica, bool hedge, bool probe,
                                  const Tensor& queries, int64_t k,
                                  TimePoint attempt_deadline);

  /// Next replica in rotation whose breaker admits traffic at `now`, or -1
  /// when every replica is open (and no half-open probe slot is free).
  /// `probe` reports whether the admission consumed a half-open probe slot.
  int64_t NextAllowedReplica(int64_t* cursor, TimePoint now, bool* probe);

  /// Called once per Query, after the round loop returned: every attempt
  /// the query still owns gets its breaker verdict delivered. Attempts
  /// that completed but were never consumed report their real outcome
  /// here; attempts still running are marked `abandoned` and report their
  /// own outcome from the worker thread when they finish.
  void AbandonOutstanding(
      const std::shared_ptr<QueryState>& state,
      const std::vector<std::shared_ptr<Attempt>>& inflight);

  /// Joins attempt threads that have finished since the last call.
  void Reap();

  const int64_t shard_index_;
  const int64_t global_offset_;
  const int64_t size_;
  const ShardClientConfig config_;
  std::vector<std::shared_ptr<ShardTransport>> replicas_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;

  mutable std::mutex stats_mu_;
  ShardClientStats stats_;

  struct ReaperEntry {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::mutex reaper_mu_;
  std::vector<ReaperEntry> outstanding_;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_SHARD_CLIENT_H_
