#include "serve/degradation.h"

#include <algorithm>
#include <cmath>

namespace adamine::serve {

Status DegradationConfig::Validate() const {
  if (min_probes <= 0) {
    return Status::InvalidArgument("min_probes must be positive");
  }
  if (window <= 0) {
    return Status::InvalidArgument("degradation window must be positive");
  }
  if (recover_ratio <= 0.0 || recover_ratio > 1.0) {
    return Status::InvalidArgument("recover_ratio must be in (0, 1]");
  }
  return Status::Ok();
}

namespace {

/// p95 of the window by nearest-rank on a sorted copy. The windows are
/// small (default 8), so the copy is noise next to one GEMM.
double WindowP95(std::vector<double> window) {
  std::sort(window.begin(), window.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(window.size())));
  return window[std::min(window.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

DegradationController::DegradationController(const DegradationConfig& config,
                                             int64_t full_probes)
    : config_(config),
      full_probes_(std::max<int64_t>(full_probes, config.min_probes)),
      probes_(full_probes_) {
  window_.reserve(static_cast<size_t>(config_.window));
}

DegradationDecision DegradationController::Observe(double score_ms) {
  DegradationDecision decision;
  decision.probes = probes_;
  if (!enabled()) return decision;
  window_.push_back(score_ms);
  if (static_cast<int64_t>(window_.size()) < config_.window) return decision;
  const double p95 = WindowP95(window_);
  window_.clear();
  if (p95 > config_.target_ms) {
    if (probes_ > config_.min_probes) {
      probes_ = std::max(config_.min_probes, probes_ / 2);
      ++dial_downs_;
      decision.changed = true;
      health_ = HealthState::kDegraded;
    } else {
      // The dial is at its floor and the target is still being missed:
      // degradation has nothing left to trade.
      health_ = HealthState::kUnhealthy;
    }
  } else if (p95 <= config_.target_ms * config_.recover_ratio &&
             probes_ < full_probes_) {
    probes_ = std::min(full_probes_, probes_ * 2);
    ++dial_ups_;
    decision.changed = true;
    health_ = probes_ == full_probes_ ? HealthState::kHealthy
                                      : HealthState::kDegraded;
  } else if (probes_ == full_probes_) {
    health_ = HealthState::kHealthy;
  } else {
    health_ = HealthState::kDegraded;
  }
  decision.probes = probes_;
  return decision;
}

void DegradationController::OnManualSetProbes(int64_t probes) {
  full_probes_ = std::max(probes, config_.min_probes);
  probes_ = probes;
  window_.clear();
  health_ = HealthState::kHealthy;
}

}  // namespace adamine::serve
