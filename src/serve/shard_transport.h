#ifndef ADAMINE_SERVE_SHARD_TRANSPORT_H_
#define ADAMINE_SERVE_SHARD_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/retrieval_service.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::serve {

/// The seam between ShardClient's failover machinery and whatever actually
/// answers a shard query (see DESIGN.md, "Network serving"). A transport is
/// one replica: the in-process implementation wraps a RetrievalService in
/// the same address space; net::RemoteShardTransport speaks the RPC
/// protocol to a ShardServer in another process. ShardClient's retries,
/// hedging, per-replica circuit breakers and timeouts operate on this
/// interface only, so they apply to both unchanged — a remote replica fails
/// with the same transient Status vocabulary (kUnavailable,
/// kDeadlineExceeded, kConnectionLost) as a local one.
class ShardTransport {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~ShardTransport() = default;

  /// Top-k scored hits per row of `queries` [B, D] over this replica's
  /// rows, with *shard-local* ids (the caller re-bases them globally).
  /// `deadline` is absolute; TimePoint::max() means unbounded. Transient
  /// failures must be IsTransient() so the failover loop retries them.
  virtual StatusOr<std::vector<std::vector<ScoredHit>>> QueryScored(
      const Tensor& queries, int64_t k, TimePoint deadline) = 0;

  /// Rows this replica serves (every replica of a shard reports the same).
  virtual int64_t size() const = 0;

  /// Human-readable endpoint for error messages ("inproc", "host:port").
  virtual std::string description() const = 0;
};

/// Same-address-space transport: forwards to RetrievalService::
/// QueryBatchScored, converting the absolute deadline into the service's
/// remaining-budget QueryOptions.
class InProcessShardTransport : public ShardTransport {
 public:
  explicit InProcessShardTransport(std::shared_ptr<RetrievalService> service)
      : service_(std::move(service)) {}

  StatusOr<std::vector<std::vector<ScoredHit>>> QueryScored(
      const Tensor& queries, int64_t k, TimePoint deadline) override {
    QueryOptions options;
    if (deadline != TimePoint::max()) {
      const double remaining =
          std::chrono::duration<double, std::milli>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded(
            "in-process transport: deadline expired before the replica was "
            "queried");
      }
      options.deadline_ms = remaining;
    }
    return service_->QueryBatchScored(queries, k, options);
  }

  int64_t size() const override { return service_->size(); }

  std::string description() const override { return "inproc"; }

  const std::shared_ptr<RetrievalService>& service() const {
    return service_;
  }

 private:
  std::shared_ptr<RetrievalService> service_;
};

}  // namespace adamine::serve

#endif  // ADAMINE_SERVE_SHARD_TRANSPORT_H_
