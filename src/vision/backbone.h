#ifndef ADAMINE_VISION_BACKBONE_H_
#define ADAMINE_VISION_BACKBONE_H_

#include <cstdint>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace adamine::vision {

/// Configuration of the synthetic vision substrate.
struct BackboneConfig {
  /// Dimension of the generator's dish latent.
  int64_t latent_dim = 24;
  /// Dimension of the hidden layer of the frozen MLP.
  int64_t hidden_dim = 96;
  /// Dimension of the emitted "image feature" vector (the analogue of the
  /// ResNet-50 pooled features the paper feeds its image branch).
  int64_t feature_dim = 48;
  /// Std-dev of the photographic nuisance noise added to the latent before
  /// projection (lighting, angle, plating variation).
  double photo_noise = 0.25;
  uint64_t seed = 99;

  Status Validate() const;
};

/// The stand-in for "a camera plus a pretrained ResNet-50" (see DESIGN.md):
/// a *fixed* (never trained) random two-layer tanh MLP applied to the dish
/// latent corrupted by photographic noise. Two photos of the same dish give
/// nearby-but-different features; the map is nonlinear and non-invertible by
/// any linear method, so learning the image branch is a real task.
class SyntheticBackbone {
 public:
  static StatusOr<SyntheticBackbone> Create(const BackboneConfig& config);

  /// Produces one image feature vector [feature_dim] for a dish latent
  /// [latent_dim]. `rng` supplies the per-photo noise.
  Tensor Render(const Tensor& latent, Rng& rng) const;

  int64_t feature_dim() const { return config_.feature_dim; }
  int64_t latent_dim() const { return config_.latent_dim; }

 private:
  explicit SyntheticBackbone(const BackboneConfig& config);

  BackboneConfig config_;
  Tensor w1_;  // [latent_dim, hidden_dim]
  Tensor b1_;  // [hidden_dim]
  Tensor w2_;  // [hidden_dim, feature_dim]
  Tensor b2_;  // [feature_dim]
};

}  // namespace adamine::vision

#endif  // ADAMINE_VISION_BACKBONE_H_
