#include "vision/backbone.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::vision {

Status BackboneConfig::Validate() const {
  if (latent_dim <= 0) {
    return Status::InvalidArgument("latent_dim must be positive");
  }
  if (hidden_dim <= 0) {
    return Status::InvalidArgument("hidden_dim must be positive");
  }
  if (feature_dim <= 0) {
    return Status::InvalidArgument("feature_dim must be positive");
  }
  if (photo_noise < 0.0) {
    return Status::InvalidArgument("photo_noise must be non-negative");
  }
  return Status::Ok();
}

StatusOr<SyntheticBackbone> SyntheticBackbone::Create(
    const BackboneConfig& config) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  return SyntheticBackbone(config);
}

SyntheticBackbone::SyntheticBackbone(const BackboneConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  // Variance-preserving random projections; weights are fixed forever.
  const float s1 = 1.0f / std::sqrt(static_cast<float>(config.latent_dim));
  const float s2 = 1.0f / std::sqrt(static_cast<float>(config.hidden_dim));
  w1_ = Tensor::Randn({config.latent_dim, config.hidden_dim}, rng, s1);
  b1_ = Tensor::Randn({config.hidden_dim}, rng, 0.1f);
  w2_ = Tensor::Randn({config.hidden_dim, config.feature_dim}, rng, s2);
  b2_ = Tensor::Randn({config.feature_dim}, rng, 0.1f);
}

Tensor SyntheticBackbone::Render(const Tensor& latent, Rng& rng) const {
  ADAMINE_CHECK_EQ(latent.numel(), config_.latent_dim);
  Tensor noisy = latent.Clone().Reshape({1, config_.latent_dim});
  for (int64_t i = 0; i < noisy.numel(); ++i) {
    noisy[i] += static_cast<float>(rng.Normal(0.0, config_.photo_noise));
  }
  Tensor h = Tanh(AddRowBroadcast(MatMul(noisy, w1_), b1_));
  Tensor out = Tanh(AddRowBroadcast(MatMul(h, w2_), b2_));
  return out.Reshape({config_.feature_dim});
}

}  // namespace adamine::vision
