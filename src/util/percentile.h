#ifndef ADAMINE_UTIL_PERCENTILE_H_
#define ADAMINE_UTIL_PERCENTILE_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace adamine::util {

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element such that at least p percent of the sample is <= it, i.e.
/// v[ceil(p/100 * n) - 1] (clamped to the sample). This is the reporting
/// convention for latency tails — the returned value is always an
/// *observed* latency. Linear interpolation (and the off-by-one
/// ceil(p*n) indexing) both misreport small samples: interpolating
/// {1..100} gives p95 = 95.05 and p99 = 99.01, numbers no request ever
/// saw; ceil(p*n) without the -1 reads one rank too deep (p95 of 100
/// samples would return the 96th). Pinned by tests/util_test.cc on a known
/// 100-sample distribution.
inline double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  ADAMINE_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile " << p);
  const double n = static_cast<double>(sorted.size());
  int64_t rank = static_cast<int64_t>(std::ceil(p / 100.0 * n));
  if (rank < 1) rank = 1;  // p = 0 means the minimum.
  if (rank > static_cast<int64_t>(sorted.size())) {
    rank = static_cast<int64_t>(sorted.size());
  }
  return sorted[static_cast<size_t>(rank - 1)];
}

}  // namespace adamine::util

#endif  // ADAMINE_UTIL_PERCENTILE_H_
