#include "util/status.h"

namespace adamine {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kConnectionLost:
      return "CONNECTION_LOST";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace adamine
