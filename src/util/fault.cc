#include "util/fault.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace adamine::fault {

namespace {

struct Schedule {
  int64_t skip = 0;
  int64_t fire = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Schedule> armed;
  std::unordered_map<std::string, int64_t> hits;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Fast path: production code must not pay for a mutex + map lookup on every
// serialised write when no test is injecting faults.
std::atomic<int64_t> g_armed_count{0};

}  // namespace

std::string ShardReplicaPoint(const std::string& point, int64_t shard,
                              int64_t replica) {
  return point + "." + std::to_string(shard) + "." + std::to_string(replica);
}

std::string ScopedPoint(const std::string& point, const std::string& scope) {
  if (scope.empty()) return point;
  return point + "." + scope;
}

void Arm(const std::string& point, int64_t skip, int64_t fire) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.find(point) == r.armed.end()) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  r.armed[point] = Schedule{skip, fire};
}

void Disarm(const std::string& point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.erase(point) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_armed_count.fetch_sub(static_cast<int64_t>(r.armed.size()),
                          std::memory_order_relaxed);
  r.armed.clear();
  r.hits.clear();
}

bool IsArmed(const std::string& point) {
  if (!AnyArmed()) return false;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.armed.find(point) != r.armed.end();
}

int64_t ArmedSkip(const std::string& point) {
  if (!AnyArmed()) return -1;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.armed.find(point);
  return it == r.armed.end() ? -1 : it->second.skip;
}

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

bool ShouldFail(const std::string& point) {
  if (!AnyArmed()) return false;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.hits[point];
  auto it = r.armed.find(point);
  if (it == r.armed.end()) return false;
  Schedule& s = it->second;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  if (s.fire > 0) {
    --s.fire;
    if (s.fire == 0) {
      r.armed.erase(it);
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;
}

int64_t Hits(const std::string& point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(point);
  return it == r.hits.end() ? 0 : it->second;
}

FaultInjectingStreambuf::FaultInjectingStreambuf(std::streambuf* target,
                                                 int64_t byte_budget)
    : target_(target), budget_(byte_budget) {}

int FaultInjectingStreambuf::overflow(int ch) {
  if (ch == traits_type::eof()) return sync() == 0 ? 0 : traits_type::eof();
  if (budget_ <= 0) return traits_type::eof();
  const char c = static_cast<char>(ch);
  if (target_->sputn(&c, 1) != 1) return traits_type::eof();
  --budget_;
  ++bytes_written_;
  return ch;
}

std::streamsize FaultInjectingStreambuf::xsputn(const char* s,
                                                std::streamsize n) {
  const std::streamsize allowed = static_cast<std::streamsize>(
      std::min<int64_t>(budget_, static_cast<int64_t>(n)));
  const std::streamsize put = allowed > 0 ? target_->sputn(s, allowed) : 0;
  budget_ -= put;
  bytes_written_ += put;
  // Returning less than n makes the owning ostream set badbit — exactly the
  // partial-write-then-crash shape the tests need.
  return put;
}

int FaultInjectingStreambuf::sync() { return target_->pubsync(); }

}  // namespace adamine::fault
