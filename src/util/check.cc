#include "util/check.h"

namespace adamine::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "[ADAMINE CHECK FAILED] %s:%d: (%s)", file, line, expr);
  if (!extra.empty()) {
    std::fprintf(stderr, " %s", extra.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace adamine::internal
