#ifndef ADAMINE_UTIL_FAULT_H_
#define ADAMINE_UTIL_FAULT_H_

#include <cstdint>
#include <limits>
#include <streambuf>
#include <string>

namespace adamine::fault {

/// A process-wide registry of named failure points, used by tests to
/// simulate crashes and numeric corruption at precise moments. Production
/// code calls ShouldFail(point) at interesting boundaries (every serialised
/// write, every checkpoint, every batch); the call is a single relaxed
/// atomic load unless a test has armed at least one point, so leaving the
/// hooks in release builds costs nothing measurable.
///
/// Well-known failure points. Using the constants (rather than ad-hoc
/// strings) keeps the producer and the test in sync.
inline constexpr char kSerializeWrite[] = "io.serialize.write";
inline constexpr char kAtomicRename[] = "io.atomic.rename";
inline constexpr char kAtomicWriteBytes[] = "io.atomic.write_bytes";
inline constexpr char kTrainerNonfiniteLoss[] = "trainer.nonfinite_loss";
inline constexpr char kTrainerCrashAfterCheckpoint[] =
    "trainer.crash_after_checkpoint";
/// Serving-path fault points (see DESIGN.md, "Overload behavior").
/// kServeScoreDelay follows the kAtomicWriteBytes convention of encoding a
/// quantity in `skip`: arm with skip = the artificial per-micro-batch
/// scoring delay in milliseconds (read via ArmedSkip, never consumed).
inline constexpr char kServeScoreDelay[] = "serve.score.delay";
/// Fires inside io::LoadTensorBundle: the bundle is parsed from a torn
/// (half-length) copy of the file, so the reader's truncation handling —
/// not a crash — must surface the error.
inline constexpr char kServeLoadRead[] = "serve.load.read";
/// Fires inside AdmissionController::Admit: the request is shed with
/// kUnavailable as if the queue were full.
inline constexpr char kServeQueueReject[] = "serve.queue.reject";
/// Fires inside ShardClient just before a replica attempt: the attempt
/// returns kUnavailable without touching the replica, as if the process
/// behind it had died. Arm the bare point to kill every replica of every
/// shard, or arm the replica-scoped variant (ShardReplicaPoint) to kill
/// one replica while the rest of the fleet stays healthy.
inline constexpr char kServeShardFail[] = "serve.shard.fail";
/// Per-shard stall: follows the kServeScoreDelay convention of encoding a
/// quantity in `skip` — arm with skip = the artificial per-attempt delay in
/// milliseconds (read via ArmedSkip, never consumed). The stall happens in
/// the attempt thread before the replica is queried, so it models a slow
/// network hop or a wedged replica; the fan-out coordinator's per-shard
/// timeout — not the stalled attempt — bounds the caller's wait. Scopes
/// with ShardReplicaPoint like kServeShardFail.
inline constexpr char kServeShardDelay[] = "serve.shard.delay";

/// Wire-level fault points, consulted by net::ShardServer and
/// net::ShardChannel (see DESIGN.md, "Network serving"). Each server/channel
/// checks its scope-qualified variant ("<point>.<scope>", see ScopedPoint)
/// first, then the bare point, so a test running several servers in one
/// process can tear exactly one of them.
/// The server hard-closes the connection (RST via SO_LINGER 0) instead of
/// writing the response — the client sees ECONNRESET mid-read.
inline constexpr char kNetConnReset[] = "net.conn.reset";
/// The server's event loop consumes incoming bytes one at a time while
/// armed — every frame arrives maximally fragmented, exercising the
/// read-side reassembly state machine.
inline constexpr char kNetReadShort[] = "net.read.short";
/// Quantity-in-skip stall (ms, read via ArmedSkip like kServeScoreDelay):
/// the server sleeps before writing each response, modelling a wedged or
/// slow peer; the client's deadline/hedging machinery must bound the wait.
inline constexpr char kNetWriteStall[] = "net.write.stall";
/// The server flips one payload byte of the outgoing response frame, so the
/// client's CRC check must reject it as a torn frame (kConnectionLost after
/// the channel drops the connection) rather than decode garbage.
inline constexpr char kNetFrameCorrupt[] = "net.frame.corrupt";

/// Fires at the two fsync sites inside io::AtomicWriteFile (temp file
/// before rename, parent directory after): the sync is skipped and the
/// write surfaces a descriptive error instead of silently claiming
/// durability. Arm with skip = 0 to fail the file fsync, skip = 1 to pass
/// it and fail the directory fsync.
inline constexpr char kIoFsync[] = "io.fsync.fail";

/// Mutable-index fault points, consulted by mutate::MutableCorpus (see
/// DESIGN.md, "Live mutation and crash recovery"). Each models a crash at
/// one boundary of the mutation pipeline; the recovery tests arm them,
/// observe the failed operation, then re-open the corpus and assert every
/// acknowledged mutation survived.
/// Fires inside WAL append: only the first half of the record's bytes reach
/// the file and the fsync is skipped, like a process killed mid-write().
/// The append reports an error (the mutation is NOT acknowledged) and
/// recovery must discard the torn tail.
inline constexpr char kMutateWalTorn[] = "mutate.wal.torn";
/// Fires inside WAL append: models write() failing with ENOSPC after half
/// the record's bytes landed. Unlike the torn-tail point this failure is
/// *transient* — the writer reports kResourceExhausted and the corpus rolls
/// the WAL back to the last acknowledged record and keeps serving, resuming
/// acks once the point disarms ("space freed") instead of latching
/// read-only. Arm with skip/fire to shape the outage window.
inline constexpr char kMutateWalEnospc[] = "mutate.wal.enospc";
/// Fires inside the background scrubber, once per sealed-segment CRC check:
/// the segment is treated as bit-rotted even though its bytes are intact,
/// so the quarantine protocol (rename to .quarantine, drop from the next
/// manifest generation, serve partial) runs without the test having to
/// corrupt real bytes. Arm with skip = the index of the segment check to
/// condemn.
inline constexpr char kMutateSegmentBitrot[] = "mutate.segment.bitrot";
/// Fires during seal, after the sealed segment file is written but before
/// the manifest names it: the seal aborts, leaving an orphaned segment that
/// recovery must delete.
inline constexpr char kMutateSealCrash[] = "mutate.seal.crash";
/// Fires during merge, after the merged segment file is written but before
/// the manifest names it: same orphan-cleanup contract as seal.
inline constexpr char kMutateMergeCrash[] = "mutate.merge.crash";
/// Fires inside manifest commit: half the new manifest's bytes are written
/// directly to its final path (no atomic rename, no fsync) — a torn
/// manifest that recovery must reject, falling back to the previous
/// generation.
inline constexpr char kMutateManifestTorn[] = "mutate.manifest.torn";

/// "<point>.<shard>.<replica>": the replica-scoped variant of a serve-path
/// fault point. ShardClient consults the scoped point first, then the bare
/// one, so tests can take down one replica (or one whole shard, by arming
/// every replica of it) without touching the others.
std::string ShardReplicaPoint(const std::string& point, int64_t shard,
                              int64_t replica);

/// "<point>.<scope>": the scope-qualified variant of a wire-level fault
/// point (scope is the server's or channel's fault_scope config string).
/// Empty scope returns the bare point.
std::string ScopedPoint(const std::string& point, const std::string& scope);

/// Arms `point`: the next `skip` hits pass, then the following `fire` hits
/// fail, after which the point disarms itself. Re-arming overwrites any
/// previous schedule for the point.
void Arm(const std::string& point, int64_t skip = 0,
         int64_t fire = std::numeric_limits<int64_t>::max());

/// Removes any schedule for `point` (hit counters are kept).
void Disarm(const std::string& point);

/// Disarms every point and zeroes every hit counter. Tests call this in
/// their setup/teardown so armed faults never leak between tests.
void Reset();

/// True if `point` currently has a schedule.
bool IsArmed(const std::string& point);

/// Remaining skip count of an armed point, or -1 if not armed. Points whose
/// schedule encodes a quantity rather than a countdown (e.g.
/// kAtomicWriteBytes, where `skip` is the byte budget before writes start
/// failing) are read through this.
int64_t ArmedSkip(const std::string& point);

/// True if any point is armed (the registry fast path).
bool AnyArmed();

/// Registers one hit at `point` and returns true if the point fires on this
/// hit. When nothing at all is armed this is a single atomic load; when the
/// registry is active, every hit is also counted so tests can enumerate the
/// failure boundaries of an operation (see Hits).
bool ShouldFail(const std::string& point);

/// Number of ShouldFail calls at `point` since the last Reset, counted only
/// while the registry is active (i.e. at least one point armed). Arm an
/// unrelated or never-firing schedule (skip = int64 max) to census the
/// boundaries of an operation without failing it.
int64_t Hits(const std::string& point);

/// A streambuf decorator that forwards writes to `target` until
/// `byte_budget` bytes have been written, then fails every subsequent write
/// — including mid-call, so a 100-byte put with 40 bytes of budget leaves
/// exactly 40 bytes in the target, like a process killed mid-write().
/// Reads are not supported.
class FaultInjectingStreambuf : public std::streambuf {
 public:
  FaultInjectingStreambuf(std::streambuf* target, int64_t byte_budget);

  int64_t bytes_written() const { return bytes_written_; }

 protected:
  int overflow(int ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;

 private:
  std::streambuf* target_;
  int64_t budget_;
  int64_t bytes_written_ = 0;
};

}  // namespace adamine::fault

#endif  // ADAMINE_UTIL_FAULT_H_
