#ifndef ADAMINE_UTIL_RNG_H_
#define ADAMINE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace adamine {

/// The complete serialisable state of an Rng: the xoshiro256** words plus
/// the Box-Muller cache. Restoring it reproduces the stream bit-for-bit,
/// which is what lets an interrupted training run resume to identical
/// results (see io::TrainingCheckpoint).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// Deterministic xoshiro256** pseudo-random generator with helpers for the
/// distributions the library needs. Every stochastic component (data
/// generation, initialisation, sampling) takes an explicit Rng so whole
/// experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from {0, ..., n-1} (k <= n), in random
  /// order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights` (all weights must be >= 0 and sum > 0).
  int64_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; useful to give each worker or
  /// module its own stream from one master seed.
  Rng Fork();

  /// Captures / restores the full generator state (checkpointing).
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace adamine

#endif  // ADAMINE_UTIL_RNG_H_
