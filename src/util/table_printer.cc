#include "util/table_printer.h"

#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace adamine {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ADAMINE_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ADAMINE_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_line = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  print_line();
  print_row(headers_);
  print_line();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_line();
    } else {
      print_row(row);
    }
  }
  print_line();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string TablePrinter::Num(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

std::string TablePrinter::MeanStd(double mean, double std, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << mean << " +- " << std;
  return oss.str();
}

}  // namespace adamine
