#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace adamine {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  ADAMINE_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return static_cast<int64_t>(v % un);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  ADAMINE_CHECK_LE(k, n);
  ADAMINE_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  ADAMINE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ADAMINE_CHECK_GE(w, 0.0);
    total += w;
  }
  ADAMINE_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace adamine
