#ifndef ADAMINE_UTIL_BACKOFF_H_
#define ADAMINE_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

namespace adamine::backoff {

/// SplitMix64 finaliser: a cheap stateless bit mixer good enough to turn a
/// (seed, salt, retry) triple into an independent-looking jitter fraction.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Capped exponential backoff with *deterministic* jitter, shared by every
/// retry loop in the tree (serve::RetryPolicy for shard failover,
/// mutate::MutableCorpus for maintenance retry). The wait before 0-based
/// retry round `retry` lies in [backoff/2, backoff) where backoff =
/// min(base_ms * 2^retry, max_ms); the jitter fraction is a hash of
/// (seed, salt, retry), so replays of the same workload back off
/// identically while distinct salts (shard index, corpus generation)
/// still desynchronise — no thundering retry herd.
inline double JitteredBackoffMs(int64_t retry, double base_ms, double max_ms,
                                uint64_t seed, uint64_t salt) {
  double backoff = base_ms;
  for (int64_t i = 0; i < retry && backoff < max_ms; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, max_ms);
  const uint64_t h = SplitMix64(
      seed ^ SplitMix64(salt * 0x100000001b3ULL + static_cast<uint64_t>(retry)));
  // Top 53 bits -> uniform double in [0, 1); no RNG state, so a replay of
  // the same (seed, salt, retry) backs off identically.
  const double frac =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return backoff * (0.5 + 0.5 * frac);
}

}  // namespace adamine::backoff

#endif  // ADAMINE_UTIL_BACKOFF_H_
