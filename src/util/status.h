#ifndef ADAMINE_UTIL_STATUS_H_
#define ADAMINE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace adamine {

/// Error categories used across the library. Mirrors the minimal subset of
/// the common `absl::StatusCode` vocabulary that this project needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
  kDataLoss,
  /// A transport-level connection failure: the TCP peer reset, the pipe
  /// broke, the dial was refused, or the frame stream tore mid-message.
  /// Distinct from kUnavailable (the peer answered and said "overloaded")
  /// so network incidents are countable separately, but equally transient:
  /// reconnecting to the same or another replica may well cure it.
  kConnectionLost,
  /// A bounded resource ran out: disk space (ENOSPC/EDQUOT on the WAL), a
  /// memtable row/byte budget, or a compaction-lag watermark. Distinct from
  /// kUnavailable (a serving-side load shed) so ingest backpressure is
  /// countable separately, but equally transient: waiting for maintenance
  /// to catch up or for space to free may well cure it.
  kResourceExhausted,
};

/// One past the last valid StatusCode, used by the transience pinning test
/// to prove every code has an explicit retry classification. Keep in sync
/// when adding codes (the test fails loudly if this drifts).
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kResourceExhausted) + 1;

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result used by all fallible, non-hot-path
/// operations (configuration validation, file I/O, model construction).
/// Internal invariant violations use ADAMINE_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ConnectionLost(std::string msg) {
    return Status(StatusCode::kConnectionLost, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for the error categories that a retry (against another replica,
  /// or simply later) may cure: kUnavailable (load shed, replica down),
  /// kDeadlineExceeded (slow replica, expired per-attempt budget),
  /// kConnectionLost (socket reset, broken pipe, refused dial, torn frame
  /// stream) and kResourceExhausted (full disk, full memtable, compaction
  /// lag — pressure that drains). Everything else — including kOk — is
  /// non-transient: corrupt data or a caller bug looks exactly the same on
  /// every replica, so retrying it only multiplies the damage. The serving
  /// layer's retry policy routes every retry/no-retry decision through
  /// this single classification (see serve::ShardClient), and the pinning
  /// test in tests/util_test.cc enumerates every code so a new one cannot
  /// silently default to non-retryable.
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kConnectionLost ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored StatusOr aborts (checked via ADAMINE_CHECK semantics).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return my_value;` in StatusOr functions.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define ADAMINE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::adamine::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace adamine

#endif  // ADAMINE_UTIL_STATUS_H_
