#ifndef ADAMINE_UTIL_CHECK_H_
#define ADAMINE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace adamine::internal {

/// Prints a fatal-check failure and aborts. Out-of-line so the macro below
/// stays cheap at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

}  // namespace adamine::internal

/// Aborts with a diagnostic if `cond` is false. Used for internal invariants
/// (shape mismatches, index bounds) that indicate a programming error rather
/// than bad user input; user-facing validation returns Status instead.
#define ADAMINE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::adamine::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                    \
  } while (0)

/// ADAMINE_CHECK with a streamed message, e.g.
/// ADAMINE_CHECK_MSG(a == b, "got " << a << " want " << b).
#define ADAMINE_CHECK_MSG(cond, stream_expr)                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream _oss;                                           \
      _oss << stream_expr;                                               \
      ::adamine::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                       _oss.str());                      \
    }                                                                    \
  } while (0)

#define ADAMINE_CHECK_EQ(a, b) \
  ADAMINE_CHECK_MSG((a) == (b), "expected " << (a) << " == " << (b))
#define ADAMINE_CHECK_NE(a, b) \
  ADAMINE_CHECK_MSG((a) != (b), "expected " << (a) << " != " << (b))
#define ADAMINE_CHECK_LT(a, b) \
  ADAMINE_CHECK_MSG((a) < (b), "expected " << (a) << " < " << (b))
#define ADAMINE_CHECK_LE(a, b) \
  ADAMINE_CHECK_MSG((a) <= (b), "expected " << (a) << " <= " << (b))
#define ADAMINE_CHECK_GT(a, b) \
  ADAMINE_CHECK_MSG((a) > (b), "expected " << (a) << " > " << (b))
#define ADAMINE_CHECK_GE(a, b) \
  ADAMINE_CHECK_MSG((a) >= (b), "expected " << (a) << " >= " << (b))

#endif  // ADAMINE_UTIL_CHECK_H_
