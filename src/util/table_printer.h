#ifndef ADAMINE_UTIL_TABLE_PRINTER_H_
#define ADAMINE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace adamine {

/// Accumulates rows of strings and prints them as an aligned, pipe-separated
/// table. Used by every bench binary to print rows in the same layout as the
/// paper's tables.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const;

  /// Formats `value` with `digits` decimal places.
  static std::string Num(double value, int digits = 1);

  /// Formats "mean ± std" with `digits` decimal places.
  static std::string MeanStd(double mean, double std, int digits = 1);

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adamine

#endif  // ADAMINE_UTIL_TABLE_PRINTER_H_
