#ifndef ADAMINE_KERNEL_INT8DOT_H_
#define ADAMINE_KERNEL_INT8DOT_H_

#include <cstdint>

namespace adamine::kernel {

/// Integer dot products over int8 codes — the scoring inner loop of the
/// quantized backend (src/quant/). All arithmetic is exact int32, so unlike
/// the float kernels there is no accumulation-order subtlety: every
/// implementation below returns the same bits by construction, and the
/// ref-vs-fast harness (tests/quant_test.cc) pins that across lengths,
/// alignments and adversarial code patterns.
///
/// Overflow contract: |a[i]|, |b[i]| <= 127, so each product is <= 16129 and
/// an int32 accumulator is safe for n <= 2^31 / 16129 ~= 133k elements.
/// Callers (the quantizer) must enforce n <= kInt8DotMaxElems.
inline constexpr int64_t kInt8DotMaxElems = 1 << 17;  // 131072, under the bound

/// Scalar reference: a plain ascending loop, kept free of manual unrolling
/// so it stays the obviously-correct baseline the fast path is diffed
/// against (ggml's test-backend-ops methodology).
int32_t Int8DotRef(const int8_t* a, const int8_t* b, int64_t n);

/// Fast path: AVX2 (sign-extend to i16, _mm256_madd_epi16, i32 accumulate)
/// when the CPU supports it, otherwise an auto-vectorisation-friendly scalar
/// loop. Dispatched once at process start; bit-equal to Int8DotRef always.
int32_t Int8Dot(const int8_t* a, const int8_t* b, int64_t n);

/// Which implementation Int8Dot dispatches to: "avx2" or "scalar".
const char* Int8DotIsa();

/// out[r] = Int8Dot(codes + r * dim, query, dim) for r in [0, rows).
/// Parallelised over row chunks (disjoint writes), so the result is
/// bit-identical at every thread count.
void Int8ScanRows(const int8_t* codes, int64_t rows, int64_t dim,
                  const int8_t* query, int32_t* out);

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_INT8DOT_H_
