#ifndef ADAMINE_KERNEL_THREAD_POOL_H_
#define ADAMINE_KERNEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adamine::kernel {

/// Persistent pool of `num_threads - 1` worker threads plus each calling
/// thread. Run() posts a job — a fixed list of chunk indices — that the
/// caller and any idle workers drain together, each claiming the next
/// unclaimed chunk. Several jobs may be in flight at once: concurrent
/// Run() calls from different threads each make progress on their own
/// chunks while idle workers help the oldest posted job first, so e.g.
/// the sharded serving layer's per-shard fan-out threads score
/// concurrently instead of queueing on a single dispatch.
///
/// Chunk-to-thread assignment is dynamic, but that never changes a bit of
/// any result: the chunk decomposition is a pure function of the problem
/// size, and every kernel either writes disjoint outputs per chunk or
/// folds per-chunk partials in ascending chunk order on the calling
/// thread (see kernel.h), so *which* thread ran a chunk is unobservable.
///
/// The pool is latency-oriented: workers sleep on a condition variable
/// while no job is posted, so an idle pool costs nothing, and Run() on a
/// single-thread pool degenerates to an inline loop with no
/// synchronisation at all.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total parallel width including the caller.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Must not be called while a Run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return threads_; }

  /// Executes fn(chunk) for every chunk in [0, num_chunks). The caller
  /// claims chunks alongside the workers and the call returns only after
  /// every chunk has finished. `fn` must not throw and must not call Run()
  /// on this pool from inside a chunk (nested parallel regions are run
  /// inline by the ParallelFor layer). Safe to call from several threads
  /// at once; the jobs overlap.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

 private:
  /// One posted Run() call. Lives on the posting thread's stack: the job
  /// leaves the dispatch queue once its last chunk is claimed, and Run()
  /// returns only after every claimed chunk has finished, so a worker can
  /// never touch a dead job.
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next_chunk{0};  // Next unclaimed chunk index.
    std::atomic<int64_t> completed{0};   // Chunks fully executed.
  };

  void WorkerLoop();

  /// Removes `job` from the dispatch queue if still present (the claimant
  /// of the last chunk usually retires it first). Caller holds mu_.
  void RetireLocked(Job* job);

  /// Fixed pool width, set before any worker is spawned.
  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  // Wakes workers: job posted / shutdown.
  std::condition_variable cv_done_;  // Wakes posters: a job's chunks finished.
  std::deque<Job*> jobs_;  // Jobs with unclaimed chunks, oldest first.
  bool shutdown_ = false;
};

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_THREAD_POOL_H_
