#ifndef ADAMINE_KERNEL_THREAD_POOL_H_
#define ADAMINE_KERNEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adamine::kernel {

/// Persistent pool of `num_threads - 1` worker threads plus the calling
/// thread. Work is dispatched as a fixed list of chunk indices with *static*
/// assignment: chunk `c` always runs on slot `c % num_threads` (slot 0 is the
/// caller), and every slot processes its chunks in ascending order. Because
/// the chunk decomposition is a function of the problem size only — never of
/// the thread count — any kernel whose chunks write disjoint outputs (or
/// whose per-chunk partials are combined in chunk order) produces bit
/// -identical results for every pool size, including 1.
///
/// The pool is latency-oriented: workers sleep on a condition variable
/// between jobs, so an idle pool costs nothing, and Run() on a single-thread
/// pool degenerates to an inline loop with no synchronisation at all.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total parallel width including the caller.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Must not be called while a Run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return threads_; }

  /// Executes fn(chunk) for every chunk in [0, num_chunks). The caller
  /// participates as slot 0 and the call returns only after every chunk has
  /// finished. `fn` must not throw and must not call Run() on this pool
  /// (nested parallel regions are run inline by the ParallelFor layer).
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop(int slot);

  /// Fixed pool width. Set before any worker is spawned: workers stride
  /// their chunk lists by this value, so it must never be derived from
  /// `workers_.size()` while the constructor is still emplacing threads.
  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;   // Bumped once per Run(); wakes the workers.
  int active_workers_ = 0;    // Workers still executing the current job.
  int64_t num_chunks_ = 0;
  const std::function<void(int64_t)>* fn_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_THREAD_POOL_H_
