#include "kernel/int8dot.h"

#include "kernel/kernel.h"
#include "util/check.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace adamine::kernel {
namespace {

/// Auto-vec-friendly scalar loop: int32 widening in the loop body, no
/// branches, contiguous loads — gcc/clang turn this into pmaddwd-ish code on
/// their own when the target allows, and it is the portable fallback
/// everywhere else.
int32_t Int8DotScalar(const int8_t* a, const int8_t* b, int64_t n) {
  int32_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

#if defined(__x86_64__)

/// AVX2 kernel, compiled for this function only (the TU itself is built for
/// the baseline target, so the binary still runs on non-AVX2 machines and
/// dispatch happens at runtime). 32 codes per iteration: each 16-byte half
/// is sign-extended to i16, multiplied pairwise and horizontally added to
/// i32 by vpmaddwd, then accumulated. Products are <= 127 * 127 and madd
/// sums two of them, far inside i16-pair -> i32 range, so the arithmetic is
/// exact and bit-equal to the scalar loop by construction.
__attribute__((target("avx2"))) int32_t Int8DotAvx2(const int8_t* a,
                                                    const int8_t* b,
                                                    int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a_lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i a_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 16));
    const __m128i b_lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i b_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 16));
    const __m256i prod_lo = _mm256_madd_epi16(_mm256_cvtepi8_epi16(a_lo),
                                              _mm256_cvtepi8_epi16(b_lo));
    const __m256i prod_hi = _mm256_madd_epi16(_mm256_cvtepi8_epi16(a_hi),
                                              _mm256_cvtepi8_epi16(b_hi));
    acc = _mm256_add_epi32(acc, _mm256_add_epi32(prod_lo, prod_hi));
  }
  // Horizontal sum of the 8 i32 lanes.
  const __m128i half = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1));
  const __m128i pair = _mm_add_epi32(half, _mm_srli_si128(half, 8));
  const __m128i one = _mm_add_epi32(pair, _mm_srli_si128(pair, 4));
  int32_t total = _mm_cvtsi128_si32(one);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool CpuHasAvx2() { return false; }

#endif  // __x86_64__

const bool kUseAvx2 = CpuHasAvx2();

}  // namespace

int32_t Int8DotRef(const int8_t* a, const int8_t* b, int64_t n) {
  int32_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

int32_t Int8Dot(const int8_t* a, const int8_t* b, int64_t n) {
#if defined(__x86_64__)
  if (kUseAvx2) return Int8DotAvx2(a, b, n);
#endif
  return Int8DotScalar(a, b, n);
}

const char* Int8DotIsa() { return kUseAvx2 ? "avx2" : "scalar"; }

void Int8ScanRows(const int8_t* codes, int64_t rows, int64_t dim,
                  const int8_t* query, int32_t* out) {
  ADAMINE_CHECK(dim >= 0 && dim <= kInt8DotMaxElems);
  ParallelFor(rows, kRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      out[r] = Int8Dot(codes + r * dim, query, dim);
    }
  });
}

}  // namespace adamine::kernel
