#ifndef ADAMINE_KERNEL_GEMM_H_
#define ADAMINE_KERNEL_GEMM_H_

#include <cstdint>

namespace adamine::kernel {

/// C = op(A) * op(B) for row-major float matrices, where op is an optional
/// transpose: op(A) is [m, k], op(B) is [k, n], C is [m, n] with leading
/// dimension n. C is written entirely (no accumulate into prior contents).
///
/// Implementation: op(B) is packed once into zero-padded column panels of
/// width kNr (a transpose when trans_b, a reshuffle otherwise), then the
/// output is processed in register tiles of kMr x kNr rows x columns with
/// the k loop innermost and ascending. Each output element is produced by a
/// single accumulation chain in ascending k order — exactly the naive
/// triple-loop's order — so the tiling changes performance, not bits. Both
/// the packing and the row loop are ParallelFor'ed over fixed chunks, and
/// every chunk writes a disjoint region, so results are also bit-identical
/// for every thread count.
void Gemm(const float* a, int64_t lda, bool trans_a, const float* b,
          int64_t ldb, bool trans_b, int64_t m, int64_t n, int64_t k,
          float* c);

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_GEMM_H_
