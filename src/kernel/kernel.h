#ifndef ADAMINE_KERNEL_KERNEL_H_
#define ADAMINE_KERNEL_KERNEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace adamine::kernel {

/// Execution configuration for the kernel layer. `num_threads == 0` means
/// "leave the current setting alone" (which defaults to the
/// ADAMINE_NUM_THREADS environment variable, then to the hardware
/// concurrency). Any positive value pins the pool width exactly.
///
/// Every kernel is bit-deterministic in the thread count: the chunk
/// decomposition depends only on the problem size, chunks write disjoint
/// outputs, and reductions combine per-chunk partials in ascending chunk
/// order. num_threads therefore only changes wall-clock time, never results.
struct KernelConfig {
  int num_threads = 0;
};

/// Applies `config` to the global kernel state (no-op for num_threads == 0).
void Configure(const KernelConfig& config);

/// Pins the pool to exactly `num_threads` (>= 1) threads, tearing down and
/// rebuilding the worker pool if the width changes. Not safe to call
/// concurrently with running kernels.
void SetNumThreads(int num_threads);

/// The current pool width (resolving the env/hardware default on first use).
int NumThreads();

/// Number of fixed-size chunks `ParallelFor` splits [0, n) into. Depends
/// only on n and grain — never on the thread count.
inline int64_t NumChunks(int64_t n, int64_t grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

namespace internal {

/// Runs body(chunk) for chunk in [0, num_chunks) on the global pool. Nested
/// calls (a parallel body invoking another kernel) run inline so the pool is
/// never re-entered; chunk decomposition is unchanged, so results are too.
/// Concurrent calls from different threads are safe and overlap: the pool
/// runs several jobs at once, each caller draining its own chunk list while
/// idle workers help the oldest job first (see ThreadPool).
void RunChunks(int64_t num_chunks, const std::function<void(int64_t)>& body);

}  // namespace internal

/// Splits [0, n) into chunks of `grain` and runs body(begin, end) for each,
/// possibly concurrently. Chunks must write disjoint outputs; under that
/// contract the result is bit-identical for every thread count.
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, const Body& body) {
  const int64_t chunks = NumChunks(n, grain);
  if (chunks <= 1) {
    if (n > 0) body(int64_t{0}, n);
    return;
  }
  internal::RunChunks(chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    const int64_t end = begin + grain < n ? begin + grain : n;
    body(begin, end);
  });
}

/// ParallelFor variant that also hands the body its chunk index, for kernels
/// that stage per-chunk partials into a slot array.
template <typename Body>
void ParallelForChunks(int64_t n, int64_t grain, const Body& body) {
  const int64_t chunks = NumChunks(n, grain);
  if (chunks <= 1) {
    if (n > 0) body(int64_t{0}, int64_t{0}, n);
    return;
  }
  internal::RunChunks(chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    const int64_t end = begin + grain < n ? begin + grain : n;
    body(c, begin, end);
  });
}

/// Ordered parallel reduction: maps each fixed chunk of [0, n) to a partial
/// with map(begin, end), then folds the partials *in ascending chunk order*
/// with combine(acc, partial) on the calling thread. The fold order is a
/// function of (n, grain) only, so results are bit-identical for every
/// thread count.
template <typename T, typename Map, typename Combine>
T ParallelReduceOrdered(int64_t n, int64_t grain, T init, const Map& map,
                        const Combine& combine) {
  const int64_t chunks = NumChunks(n, grain);
  if (chunks <= 1) {
    return n > 0 ? combine(init, map(int64_t{0}, n)) : init;
  }
  std::vector<T> partials(static_cast<size_t>(chunks));
  internal::RunChunks(chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    const int64_t end = begin + grain < n ? begin + grain : n;
    partials[static_cast<size_t>(c)] = map(begin, end);
  });
  T acc = init;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

/// dst.row(indices[i]) += src.row(i) for every i with indices[i] >= 0
/// (negative indices are skipped — the embedding-padding convention).
/// Parallelised over *column* ranges: each chunk walks all indices in order
/// for its disjoint slice of columns, so duplicate indices accumulate in
/// exactly the sequential order and the result is bit-exact for any thread
/// count. Callers must bounds-check indices beforehand.
void ScatterAddRows(float* dst, int64_t dst_stride, const int64_t* indices,
                    int64_t num_indices, const float* src, int64_t src_stride,
                    int64_t cols);

/// Default elementwise grain: small enough to spread batch-sized tensors,
/// large enough that per-chunk dispatch cost stays negligible.
inline constexpr int64_t kElementwiseGrain = 4096;

/// Default row grain for [N, C] kernels that parallelise over rows.
inline constexpr int64_t kRowGrain = 32;

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_KERNEL_H_
