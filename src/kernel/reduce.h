#ifndef ADAMINE_KERNEL_REDUCE_H_
#define ADAMINE_KERNEL_REDUCE_H_

#include <cstdint>

namespace adamine::kernel {

/// Pairwise (block-recursive) summation of p[0..n) in double precision.
/// Error grows O(log n) instead of the O(n) of a left fold, and the
/// reduction tree is a pure function of n — evaluation order never depends
/// on the thread count, so the result is order-stable under partitioned
/// execution.
double PairwiseSum(const float* p, int64_t n);

/// Pairwise summation of p[i]^2 (the RowNorms / L2 normalisation inner
/// reduction).
double PairwiseSumSquares(const float* p, int64_t n);

/// Pairwise summation of a[i] * b[i].
double PairwiseDot(const float* a, const float* b, int64_t n);

/// Chunk width used when a whole-tensor reduction is split across the pool;
/// each chunk is itself reduced pairwise, and the per-chunk partials are
/// folded in ascending chunk order.
inline constexpr int64_t kReduceGrain = 1 << 15;

/// Pairwise sum over a whole tensor, parallelised over fixed kReduceGrain
/// chunks with an ordered fold of the partials.
double ParallelPairwiseSum(const float* p, int64_t n);

}  // namespace adamine::kernel

#endif  // ADAMINE_KERNEL_REDUCE_H_
