#include "kernel/kernel.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "kernel/thread_pool.h"
#include "util/check.h"

namespace adamine::kernel {

namespace {

// Upper bound on the pool width; a backstop against absurd configs, not a
// tuning knob.
constexpr int kMaxThreads = 256;

std::mutex pool_mu;
std::unique_ptr<ThreadPool> pool;          // Guarded by pool_mu.
int configured_threads = 0;                // 0 = resolve default on first use.

// True while the current thread is executing inside a ParallelFor body;
// nested kernels then run inline instead of re-entering the pool.
thread_local bool in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("ADAMINE_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= kMaxThreads) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw > kMaxThreads ? kMaxThreads : hw);
}

// Returns the pool, creating it on first use. Callers hold no lock; pool
// teardown (SetNumThreads) must not race with running kernels — that is the
// documented lifecycle contract.
ThreadPool& GetPool() {
  std::lock_guard<std::mutex> lock(pool_mu);
  if (!pool) {
    if (configured_threads == 0) configured_threads = DefaultNumThreads();
    pool = std::make_unique<ThreadPool>(configured_threads);
  }
  return *pool;
}

}  // namespace

void Configure(const KernelConfig& config) {
  if (config.num_threads > 0) SetNumThreads(config.num_threads);
}

void SetNumThreads(int num_threads) {
  ADAMINE_CHECK_GE(num_threads, 1);
  ADAMINE_CHECK_LE(num_threads, kMaxThreads);
  std::lock_guard<std::mutex> lock(pool_mu);
  if (num_threads == configured_threads && pool) return;
  configured_threads = num_threads;
  pool.reset();  // Rebuilt lazily at the new width.
}

int NumThreads() {
  return GetPool().num_threads();
}

namespace internal {

void RunChunks(int64_t num_chunks, const std::function<void(int64_t)>& body) {
  if (in_parallel_region) {
    // Nested region: run inline. The chunk structure is identical, so any
    // deterministic kernel stays deterministic.
    for (int64_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }
  // Concurrent top-level dispatches from different threads — e.g. the
  // sharded serving layer's per-shard fan-out — overlap on the pool; each
  // caller drains its own job's chunks (see ThreadPool::Run).
  ThreadPool& p = GetPool();
  in_parallel_region = true;
  p.Run(num_chunks, [&body](int64_t c) {
    in_parallel_region = true;  // Also marks the worker threads.
    body(c);
  });
  in_parallel_region = false;
}

}  // namespace internal

void ScatterAddRows(float* dst, int64_t dst_stride, const int64_t* indices,
                    int64_t num_indices, const float* src, int64_t src_stride,
                    int64_t cols) {
  // Column-sliced: every chunk visits all indices in order for its own
  // disjoint column range, so duplicates accumulate exactly as in the
  // sequential loop.
  ParallelFor(cols, /*grain=*/512, [&](int64_t c0, int64_t c1) {
    for (int64_t i = 0; i < num_indices; ++i) {
      const int64_t r = indices[i];
      if (r < 0) continue;
      float* d = dst + r * dst_stride;
      const float* s = src + i * src_stride;
      for (int64_t j = c0; j < c1; ++j) d[j] += s[j];
    }
  });
}

}  // namespace adamine::kernel
