#include "kernel/thread_pool.h"

#include "util/check.h"

namespace adamine::kernel {

ThreadPool::ThreadPool(int num_threads) : threads_(num_threads) {
  ADAMINE_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int slot = 1; slot < num_threads; ++slot) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RetireLocked(Job* job) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (*it == job) {
      jobs_.erase(it);
      return;
    }
  }
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  if (threads_ == 1 || num_chunks <= 1) {
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  Job job;
  job.fn = &fn;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(&job);
  }
  cv_work_.notify_all();
  // The caller drains its own job alongside the workers.
  for (;;) {
    const int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) break;
    fn(c);
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  // Workers that never woke have not retired the drained job; it must be
  // out of the queue before this stack frame dies.
  RetireLocked(&job);
  cv_done_.wait(lock, [&job, num_chunks] {
    return job.completed.load(std::memory_order_acquire) == num_chunks;
  });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
    if (shutdown_) return;
    Job* job = jobs_.front();
    // Claim under the lock: pairs with RetireLocked so a retired job is
    // never claimed from.
    const int64_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) {
      RetireLocked(job);
      continue;
    }
    if (c + 1 == job->num_chunks) RetireLocked(job);
    const int64_t num_chunks = job->num_chunks;
    lock.unlock();
    (*job->fn)(c);
    // After this increment the posting thread may free the job, so only
    // locals are touched from here on. The acq_rel pairs with the
    // poster's acquire load: every chunk's writes happen-before Run()
    // returns.
    const int64_t done =
        job->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    lock.lock();
    if (done == num_chunks) cv_done_.notify_all();
  }
}

}  // namespace adamine::kernel
