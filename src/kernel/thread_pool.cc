#include "kernel/thread_pool.h"

#include "util/check.h"

namespace adamine::kernel {

ThreadPool::ThreadPool(int num_threads) : threads_(num_threads) {
  ADAMINE_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int slot = 1; slot < num_threads; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  const int threads = threads_;
  if (threads == 1 || num_chunks <= 1) {
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_chunks_ = num_chunks;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller is slot 0: chunks 0, T, 2T, ... in ascending order.
  for (int64_t c = 0; c < num_chunks; c += threads) fn(c);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return active_workers_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(int slot) {
  const int threads = threads_;
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int64_t)>* fn;
    int64_t num_chunks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = fn_;
      num_chunks = num_chunks_;
    }
    for (int64_t c = slot; c < num_chunks; c += threads) (*fn)(c);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace adamine::kernel
