// Pairwise reductions. Compiled with -O3 (see src/CMakeLists.txt); the base
// cases accumulate in double, so there is no float-rounding sensitivity to
// vectorisation width.

#include "kernel/reduce.h"

#include "kernel/kernel.h"

namespace adamine::kernel {

namespace {

// Below this length a straight fold is both fast and accurate enough; the
// recursion above it is what bounds the error logarithmically.
constexpr int64_t kPairwiseBase = 128;

}  // namespace

double PairwiseSum(const float* p, int64_t n) {
  if (n <= kPairwiseBase) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += p[i];
    return acc;
  }
  const int64_t half = n / 2;
  return PairwiseSum(p, half) + PairwiseSum(p + half, n - half);
}

double PairwiseSumSquares(const float* p, int64_t n) {
  if (n <= kPairwiseBase) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += double(p[i]) * p[i];
    return acc;
  }
  const int64_t half = n / 2;
  return PairwiseSumSquares(p, half) + PairwiseSumSquares(p + half, n - half);
}

double PairwiseDot(const float* a, const float* b, int64_t n) {
  if (n <= kPairwiseBase) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += double(a[i]) * b[i];
    return acc;
  }
  const int64_t half = n / 2;
  return PairwiseDot(a, b, half) + PairwiseDot(a + half, b + half, n - half);
}

double ParallelPairwiseSum(const float* p, int64_t n) {
  return ParallelReduceOrdered<double>(
      n, kReduceGrain, 0.0,
      [p](int64_t begin, int64_t end) {
        return PairwiseSum(p + begin, end - begin);
      },
      [](double acc, double partial) { return acc + partial; });
}

}  // namespace adamine::kernel
