// Cache-tiled, panel-packed GEMM. Compiled with -O3 (see src/CMakeLists.txt)
// so the kNr-wide inner loops vectorise; -ffp-contract=off keeps mul+add
// rounding separate, preserving bit-identity with the pre-kernel-layer naive
// loops.

#include "kernel/gemm.h"

#include <algorithm>
#include <vector>

#include "kernel/kernel.h"

namespace adamine::kernel {

namespace {

// Register tile: kMr output rows by kNr output columns. kNr floats span two
// AVX2 (or four SSE) vectors; kMr x kNr single-precision accumulators fit
// the architectural register file with room for the A broadcasts.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

// Row chunk for the parallel loop over C; a multiple of kMr so chunk
// boundaries never split a register tile.
constexpr int64_t kRowChunk = 32;

/// Packs columns [jb, jb + w) of op(B) (w <= kNr) for all K rows into
/// `dst`, one kNr-wide row per k, zero-padded on the right.
void PackBPanel(const float* b, int64_t ldb, bool trans_b, int64_t kdim,
                int64_t jb, int64_t w, float* dst) {
  for (int64_t kk = 0; kk < kdim; ++kk) {
    if (trans_b) {
      for (int64_t j = 0; j < w; ++j) dst[j] = b[(jb + j) * ldb + kk];
    } else {
      const float* row = b + kk * ldb + jb;
      for (int64_t j = 0; j < w; ++j) dst[j] = row[j];
    }
    for (int64_t j = w; j < kNr; ++j) dst[j] = 0.0f;
    dst += kNr;
  }
}

/// C tile [MR, w] = sum over k of a_rows[r][k] * panel row k. The k loop is
/// outermost and ascending with one accumulator chain per output element —
/// the exact order of the naive kernels — while the j loop vectorises.
template <int MR>
void MicroKernel(const float* const* a_rows, const float* panel, int64_t kdim,
                 float* c, int64_t ldc, int64_t w) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  for (int64_t kk = 0; kk < kdim; ++kk) {
    const float* brow = panel + kk * kNr;
    for (int r = 0; r < MR; ++r) {
      const float av = a_rows[r][kk];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < w; ++j) crow[j] = acc[r][j];
  }
}

}  // namespace

void Gemm(const float* a, int64_t lda, bool trans_a, const float* b,
          int64_t ldb, bool trans_b, int64_t m, int64_t n, int64_t k,
          float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (int64_t i = 0; i < m * n; ++i) c[i] = 0.0f;
    return;
  }

  // Stage 1: pack op(B) into zero-padded column panels (disjoint writes per
  // panel, so the parallel packing is trivially deterministic).
  const int64_t num_panels = (n + kNr - 1) / kNr;
  std::vector<float> packed(static_cast<size_t>(num_panels * k * kNr));
  float* packed_b = packed.data();
  ParallelFor(num_panels, /*grain=*/4, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t jb = p * kNr;
      PackBPanel(b, ldb, trans_b, k, jb, std::min(kNr, n - jb),
                 packed_b + p * k * kNr);
    }
  });

  // Stage 2: register-tiled sweep over C, parallel over fixed row chunks.
  ParallelFor(m, kRowChunk, [&](int64_t i_begin, int64_t i_end) {
    // When op(A) is a transpose, its rows are strided; pack the current
    // kMr-row block into a contiguous scratch so the micro-kernel always
    // streams. The scratch is chunk-local, so chunks stay independent.
    std::vector<float> packed_a;
    if (trans_a) packed_a.resize(static_cast<size_t>(kMr * k));
    for (int64_t i0 = i_begin; i0 < i_end; i0 += kMr) {
      const int64_t mr = std::min(kMr, i_end - i0);
      const float* a_rows[kMr];
      if (!trans_a) {
        for (int64_t r = 0; r < mr; ++r) a_rows[r] = a + (i0 + r) * lda;
      } else {
        for (int64_t r = 0; r < mr; ++r) {
          float* dst = packed_a.data() + r * k;
          for (int64_t kk = 0; kk < k; ++kk) dst[kk] = a[kk * lda + i0 + r];
          a_rows[r] = dst;
        }
      }
      for (int64_t r = mr; r < kMr; ++r) a_rows[r] = a_rows[0];
      for (int64_t p = 0; p < num_panels; ++p) {
        const int64_t jb = p * kNr;
        const int64_t w = std::min(kNr, n - jb);
        const float* panel = packed_b + p * k * kNr;
        float* ctile = c + i0 * n + jb;
        switch (mr) {
          case 4: MicroKernel<4>(a_rows, panel, k, ctile, n, w); break;
          case 3: MicroKernel<3>(a_rows, panel, k, ctile, n, w); break;
          case 2: MicroKernel<2>(a_rows, panel, k, ctile, n, w); break;
          default: MicroKernel<1>(a_rows, panel, k, ctile, n, w); break;
        }
      }
    }
  });
}

}  // namespace adamine::kernel
