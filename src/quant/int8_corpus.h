#ifndef ADAMINE_QUANT_INT8_CORPUS_H_
#define ADAMINE_QUANT_INT8_CORPUS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::quant {

/// Per-row int8 affine quantization of a float corpus (the ggml
/// ggml_quantize_chunk shape, specialised to row granularity):
///
///   x[j] ~= scale * code[j] + bias,   code[j] in [-127, 127]
///
/// with scale = (max - min) / 254 and bias = (max + min) / 2 per row, so the
/// full row range maps onto the symmetric code range. Alongside the codes
/// the quantizer stores, per row, everything the two-stage search needs to
/// make its candidate selection *provably* safe:
///
///   - sum_abs_codes: sum_j |code[j]|, the weight of the query-side
///     quantization error in the score bound;
///   - recon_error:   the measured max_j |x[j] - (scale * code[j] + bias)|
///     (rounded up), the weight of the corpus-side error — measured, not
///     the analytic scale/2, so clamping and degenerate rows (all-equal,
///     denormal range) stay covered;
///   - max_abs:       max_j |x[j]| (rounded up), which bounds the float
///     accumulation-chain rounding of the exact reference dot itself.
///
/// See src/quant/quantized_backend.cc for how these combine into a per-row
/// score interval that makes the exact rerank bit-identical to the
/// exhaustive path.
struct QuantizedCorpus {
  int64_t rows = 0;
  int64_t dim = 0;
  std::vector<int8_t> codes;          // [rows * dim], row-major.
  std::vector<float> scales;          // [rows]
  std::vector<float> biases;          // [rows]
  std::vector<int32_t> sum_abs_codes;  // [rows]
  std::vector<float> recon_errors;    // [rows]
  std::vector<float> max_abs;         // [rows]
};

/// Quantizes a [N, D] float tensor row by row. Rows need not be unit-norm
/// (the backend-level contract), but every value must be finite; D is
/// bounded by kernel::kInt8DotMaxElems so the int32 scan accumulator cannot
/// overflow. All per-row statistics are computed in double and rounded
/// conservatively.
StatusOr<QuantizedCorpus> QuantizeRows(const Tensor& items);

/// Bytes the approximate scan touches per corpus: codes + per-row metadata.
/// (The float rows kept for the exact rerank are cold — the scan never
/// reads them; only the `rerank_factor * k`-ish gathered candidates do.)
int64_t QuantizedBytes(const QuantizedCorpus& corpus);

/// On-disk format: magic "ADMQ", u32 format version, i64 rows, i64 dim,
/// codes, scales, biases, sum_abs_codes, recon_errors, max_abs, u32 CRC-32
/// of everything after the magic — the io/wire versioned-CRC idiom (see
/// io/serialize.h). Readers validate the header against the bytes actually
/// available before allocating and verify the CRC, so corrupt or truncated
/// input yields a Status, never a garbage corpus.
Status WriteQuantizedCorpus(std::ostream& os, const QuantizedCorpus& corpus);
StatusOr<QuantizedCorpus> ReadQuantizedCorpus(std::istream& is);

/// File-path conveniences; Save writes atomically (io::AtomicWriteFile).
Status SaveQuantizedCorpus(const std::string& path,
                           const QuantizedCorpus& corpus);
StatusOr<QuantizedCorpus> LoadQuantizedCorpus(const std::string& path);

}  // namespace adamine::quant

#endif  // ADAMINE_QUANT_INT8_CORPUS_H_
