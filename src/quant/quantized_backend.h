#ifndef ADAMINE_QUANT_QUANTIZED_BACKEND_H_
#define ADAMINE_QUANT_QUANTIZED_BACKEND_H_

#include <memory>

#include "serve/backend.h"

namespace adamine::quant {

/// Factory for the "quantized" scoring backend: an int8 approximate scan
/// over the quantized corpus (kernel::Int8ScanRows) selects a candidate set
/// via per-row score intervals, then an exact float rerank over the
/// gathered rows (serve::DotAscending) produces the final top-k. The
/// candidate set provably contains the true top-k (see the bound derivation
/// in quantized_backend.cc), so the result is bit-identical to the scalar
/// reference and the backend reports exact() == true.
///
/// BackendConfig::rerank_factor (>= 1) floors the candidate set at
/// min(N, rerank_factor * k) rows, giving the knob the usual two-stage
/// semantics; the verified interval selection can widen past the floor when
/// quantization error demands it — exactness is never traded away.
///
/// Registered under the name "quantized" by the serve registry (no probe
/// dial, no filter support); this header exists for direct construction in
/// tests and benches.
StatusOr<std::unique_ptr<serve::ScoringBackend>> CreateQuantizedBackend(
    const serve::BackendConfig& config);

}  // namespace adamine::quant

#endif  // ADAMINE_QUANT_QUANTIZED_BACKEND_H_
