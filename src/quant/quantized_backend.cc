// The two-stage quantized scoring backend.
//
// Stage 1 scans the int8 codes (kernel::Int8ScanRows, AVX2-dispatched) and
// turns each integer dot into a *score interval* [approx - E, approx + E]
// that provably contains the reference float-chain score. Stage 2 gathers
// every row whose interval upper bound reaches the k-th best lower bound
// (floored at rerank_factor * k rows) and reranks just those with the exact
// reference dot (serve::DotAscending, compiled in backend.cc under
// -ffp-contract=off). Because no excluded row can beat the k-th best lower
// bound, the final top-k is bit-identical to the exhaustive path — this
// backend reports exact() == true and passes the golden-diff matrix.
//
// The interval derivation, with per-row stats from QuantizeRows:
//   x[j] = scale*c[j] + bias + e[j],        |e[j]| <= recon_error   (measured)
//   q[j] = qs*qc[j] + f[j],                 |f[j]| <= fq_err        (measured)
//   S    = sum_j q[j]*x[j]
//        = qs*scale*dot + bias*sum_q  +  scale*sum_j f[j]*c[j] + sum_j q[j]*e[j]
//          \------ approx (double) -/     \------------- error -------------/
//   |S - approx| <= scale*fq_err*sum_abs_codes + sum_abs_q*recon_error
// and the reference score F is the *float* accumulation chain of S, off by
// at most the standard chain bound gamma_d * sum|q[j]*x[j]| <=
// gamma_d * max_abs * sum_abs_q (plus a subnormal absolute term). Every
// ingredient is computed in double and the total is inflated by a relative
// margin dwarfing double rounding, so the interval is conservative, never
// optimistic.

#include "quant/quantized_backend.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "kernel/int8dot.h"
#include "kernel/kernel.h"
#include "quant/int8_corpus.h"
#include "util/stopwatch.h"

namespace adamine::quant {

namespace {

using serve::BackendConfig;
using serve::Filter;
using serve::QueryBatch;
using serve::QueryOptions;
using serve::ScoredHit;
using serve::ScoringBackend;
using serve::TopKResult;

/// Relative inflation applied to the assembled error bound: ~1e7 times the
/// double rounding it needs to cover, and still invisible next to the int8
/// quantization error it rides on.
constexpr double kBoundMargin = 1e-9;

/// k-th largest value of a stream via a size-k min-heap: the common case is
/// a single compare against the heap root per element, so a 40k-row corpus
/// costs ~n compares where std::nth_element's introselect costs a full
/// O(n) partition pass plus the copy into scratch (measured ~10x slower on
/// the serving bench shape). The selected *value* is identical to
/// nth_element's, so candidate selection — and the bit-exact result — is
/// unchanged.
class KthLargest {
 public:
  explicit KthLargest(int64_t k) : k_(static_cast<size_t>(k)) {
    heap_.reserve(k_);
  }

  void Push(double v) {
    if (heap_.size() < k_) {
      heap_.push_back(v);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<double>());
    } else if (v > heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<double>());
      heap_.back() = v;
      std::push_heap(heap_.begin(), heap_.end(), std::greater<double>());
    }
  }

  /// The k-th largest seen so far; requires at least k pushes.
  double Value() const { return heap_.front(); }

 private:
  size_t k_;
  std::vector<double> heap_;
};

class QuantizedBackend final : public ScoringBackend {
 public:
  QuantizedBackend(Tensor items, QuantizedCorpus corpus,
                   int64_t rerank_factor)
      : items_(std::move(items)),
        corpus_(std::move(corpus)),
        rerank_factor_(rerank_factor) {
    // Float-chain rounding envelope for this dimension, hoisted out of the
    // per-row loop: gamma_{d+2} with unit roundoff 2^-24, plus a subnormal
    // absolute term (underflowed products round absolutely, not
    // relatively).
    const double u = std::ldexp(1.0, -24);
    const double du = static_cast<double>(corpus_.dim + 2) * u;
    chain_gamma_ = du / (1.0 - du);
    chain_abs_ = static_cast<double>(corpus_.dim) *
                 static_cast<double>(std::numeric_limits<float>::min());
  }

  const char* name() const override { return "quantized"; }
  int64_t size() const override { return corpus_.rows; }
  int64_t dim() const override { return corpus_.dim; }
  bool exact() const override { return true; }

 protected:
  StatusOr<TopKResult> ScoreTopKImpl(const QueryBatch& batch,
                                     const Filter* /*filter*/, int64_t k,
                                     const QueryOptions& /*options*/)
      override {
    const int64_t b = batch.queries.rows();
    const int64_t d = corpus_.dim;
    const int64_t n = corpus_.rows;
    const int64_t take = std::min(k, n);
    TopKResult out;
    out.hits.resize(static_cast<size_t>(b));
    Stopwatch watch;

    // Queries are independent, so the batch spreads over the kernel pool
    // with per-chunk scratch; each query writes only its own hits row, and
    // its whole pipeline (scan runs inline when nested — see
    // kernel::internal::RunChunks) is sequential within the chunk, so
    // results are bit-identical at every thread count.
    kernel::ParallelFor(b, 1, [&](int64_t qb, int64_t qe) {
      std::vector<int8_t> qcodes(static_cast<size_t>(d));
      std::vector<int32_t> dots(static_cast<size_t>(n));
      std::vector<double> lower(static_cast<size_t>(n));
      std::vector<double> upper(static_cast<size_t>(n));
      std::vector<ScoredHit> cands;
      for (int64_t i = qb; i < qe; ++i) {
        const float* q = batch.queries.data() + i * d;

      // Query statistics in double, ascending j (determinism: sequential).
      double sum_q = 0.0;
      double sum_abs_q = 0.0;
      double qmax = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const double v = q[j];
        sum_q += v;
        sum_abs_q += std::fabs(v);
        qmax = std::max(qmax, std::fabs(v));
      }

      bool all_candidates = !std::isfinite(sum_abs_q);
      if (!all_candidates) {
        // Symmetric query quantization: q[j] ~= qs * qc[j].
        const double qs = qmax / 127.0;
        double fq_err = 0.0;
        for (int64_t j = 0; j < d; ++j) {
          int32_t c = 0;
          if (qs > 0.0) {
            const double rounded = std::nearbyint(q[j] / qs);
            c = static_cast<int32_t>(
                std::max(-127.0, std::min(127.0, rounded)));
          }
          qcodes[static_cast<size_t>(j)] = static_cast<int8_t>(c);
          fq_err = std::max(fq_err, std::fabs(q[j] - qs * c));
        }

        kernel::Int8ScanRows(corpus_.codes.data(), n, d, qcodes.data(),
                             dots.data());

        for (int64_t r = 0; r < n; ++r) {
          const size_t s = static_cast<size_t>(r);
          const double scale = corpus_.scales[s];
          const double approx = qs * scale * dots[s] +
                                static_cast<double>(corpus_.biases[s]) *
                                    sum_q;
          double err = scale * fq_err * corpus_.sum_abs_codes[s] +
                       sum_abs_q * corpus_.recon_errors[s] +
                       chain_gamma_ * corpus_.max_abs[s] * sum_abs_q +
                       chain_abs_;
          err = err * (1.0 + kBoundMargin) + kBoundMargin * std::fabs(approx);
          lower[s] = approx - err;
          upper[s] = approx + err;
          if (!std::isfinite(lower[s]) || !std::isfinite(upper[s])) {
            all_candidates = true;
            break;
          }
        }
      }

      double cutoff = -std::numeric_limits<double>::infinity();
      if (!all_candidates && take < n) {
        // k-th best lower bound: at least `take` rows score >= it, so any
        // row whose upper bound misses it is strictly out of the top-k.
        KthLargest kth_lower(take);
        for (int64_t r = 0; r < n; ++r) {
          kth_lower.Push(lower[static_cast<size_t>(r)]);
        }
        cutoff = kth_lower.Value();
        // rerank_factor floors the candidate set at m rows (by upper
        // bound), the conventional two-stage knob; it can only widen the
        // verified set, never narrow it. The guard keeps the product from
        // overflowing for absurd factors: anything past n means "rerank
        // the whole corpus".
        const int64_t m =
            rerank_factor_ > n / take ? n : rerank_factor_ * take;
        if (m >= n) {
          cutoff = -std::numeric_limits<double>::infinity();
        } else if (m > take) {
          KthLargest mth_upper(m);
          for (int64_t r = 0; r < n; ++r) {
            mth_upper.Push(upper[static_cast<size_t>(r)]);
          }
          cutoff = std::min(cutoff, mth_upper.Value());
        }
      }

      // Gather + exact rerank: ascending row order, reference float chain.
      cands.clear();
      for (int64_t r = 0; r < n; ++r) {
        if (!all_candidates && upper[static_cast<size_t>(r)] < cutoff) {
          continue;
        }
        cands.push_back(ScoredHit{
            r, serve::DotAscending(items_.data() + r * d, q, d)});
      }
      const int64_t keep =
          std::min(take, static_cast<int64_t>(cands.size()));
      std::partial_sort(cands.begin(), cands.begin() + keep, cands.end(),
                        [](const ScoredHit& a, const ScoredHit& b2) {
                          return a.score > b2.score ||
                                 (a.score == b2.score && a.index < b2.index);
                        });
      cands.resize(static_cast<size_t>(keep));
        out.hits[static_cast<size_t>(i)] = cands;
      }
    });
    out.score_ms = watch.ElapsedMillis();  // Scan, bounds and rerank fused.
    return out;
  }

 private:
  Tensor items_;             // [N, D] float rows, cold until the rerank.
  QuantizedCorpus corpus_;   // What the approximate scan reads.
  const int64_t rerank_factor_;
  double chain_gamma_ = 0.0;
  double chain_abs_ = 0.0;
};

}  // namespace

StatusOr<std::unique_ptr<serve::ScoringBackend>> CreateQuantizedBackend(
    const serve::BackendConfig& config) {
  if (config.rerank_factor < 1) {
    return Status::InvalidArgument(
        "quantized backend needs rerank_factor >= 1, got " +
        std::to_string(config.rerank_factor));
  }
  auto corpus = QuantizeRows(config.items);
  if (!corpus.ok()) return corpus.status();
  // The Tensor copy aliases the caller's buffer: the float rows stay
  // resident for the exact rerank but are never touched by the scan.
  return std::unique_ptr<serve::ScoringBackend>(new QuantizedBackend(
      config.items, std::move(corpus).value(), config.rerank_factor));
}

}  // namespace adamine::quant
