#include "quant/int8_corpus.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "io/serialize.h"
#include "io/wire.h"
#include "kernel/int8dot.h"
#include "util/check.h"

namespace adamine::quant {

namespace {

constexpr char kQuantMagic[4] = {'A', 'D', 'M', 'Q'};
constexpr uint32_t kQuantFormatVersion = 1;

/// Upper bound on rows accepted by the reader before allocation — far above
/// any real corpus, low enough that a hostile header cannot demand an
/// absurd reservation on its own (the byte-count check below is the real
/// guard; this is the backstop).
constexpr int64_t kMaxQuantRows = int64_t{1} << 40;

Status ExpectQuantMagic(io::wire::Reader& reader) {
  char magic[4];
  ADAMINE_RETURN_IF_ERROR(reader.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kQuantMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("bad quantized-corpus magic (want ADMQ)");
  }
  return Status::Ok();
}

/// Next float >= x: the stored per-row bounds must never round down, or the
/// score interval they feed would no longer contain the true score.
float RoundUp(double x) {
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace

StatusOr<QuantizedCorpus> QuantizeRows(const Tensor& items) {
  if (!items.defined() || items.ndim() != 2) {
    return Status::InvalidArgument("quantizer needs a 2-D [N, D] tensor");
  }
  const int64_t rows = items.rows();
  const int64_t dim = items.cols();
  if (dim <= 0 || dim > kernel::kInt8DotMaxElems) {
    return Status::InvalidArgument(
        "quantizer needs 0 < dim <= " +
        std::to_string(kernel::kInt8DotMaxElems) +
        " (int32 scan-accumulator bound), got " + std::to_string(dim));
  }

  QuantizedCorpus out;
  out.rows = rows;
  out.dim = dim;
  out.codes.resize(static_cast<size_t>(rows * dim));
  out.scales.resize(static_cast<size_t>(rows));
  out.biases.resize(static_cast<size_t>(rows));
  out.sum_abs_codes.resize(static_cast<size_t>(rows));
  out.recon_errors.resize(static_cast<size_t>(rows));
  out.max_abs.resize(static_cast<size_t>(rows));

  for (int64_t r = 0; r < rows; ++r) {
    const float* x = items.data() + r * dim;
    double lo = x[0];
    double hi = x[0];
    double row_max_abs = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      const double v = x[j];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "quantizer requires finite values; row " + std::to_string(r) +
            " col " + std::to_string(j) + " is not");
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      row_max_abs = std::max(row_max_abs, std::fabs(v));
    }
    // Range arithmetic in double: even +-FLT_MAX rows cannot overflow here.
    const float scale = static_cast<float>((hi - lo) / 254.0);
    const float bias = static_cast<float>((hi + lo) / 2.0);
    int8_t* codes = out.codes.data() + r * dim;
    int32_t sum_abs = 0;
    double recon_err = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      int32_t c = 0;
      if (scale > 0.0f) {
        const double q = std::nearbyint(
            (static_cast<double>(x[j]) - static_cast<double>(bias)) /
            static_cast<double>(scale));
        c = static_cast<int32_t>(std::max(-127.0, std::min(127.0, q)));
      }
      // A zero (or underflowed-to-zero) scale degrades to codes of all
      // zeros; the measured reconstruction error below still covers it, so
      // the two-stage search stays exact — it just reranks more rows.
      codes[j] = static_cast<int8_t>(c);
      sum_abs += c < 0 ? -c : c;
      const double recon = static_cast<double>(scale) * c +
                           static_cast<double>(bias);
      recon_err = std::max(recon_err,
                           std::fabs(static_cast<double>(x[j]) - recon));
    }
    out.scales[static_cast<size_t>(r)] = scale;
    out.biases[static_cast<size_t>(r)] = bias;
    out.sum_abs_codes[static_cast<size_t>(r)] = sum_abs;
    out.recon_errors[static_cast<size_t>(r)] = RoundUp(recon_err);
    out.max_abs[static_cast<size_t>(r)] = RoundUp(row_max_abs);
  }
  return out;
}

int64_t QuantizedBytes(const QuantizedCorpus& corpus) {
  return static_cast<int64_t>(corpus.codes.size() * sizeof(int8_t) +
                              corpus.scales.size() * sizeof(float) +
                              corpus.biases.size() * sizeof(float) +
                              corpus.sum_abs_codes.size() * sizeof(int32_t) +
                              corpus.recon_errors.size() * sizeof(float) +
                              corpus.max_abs.size() * sizeof(float));
}

Status WriteQuantizedCorpus(std::ostream& os, const QuantizedCorpus& corpus) {
  ADAMINE_CHECK_EQ(static_cast<int64_t>(corpus.codes.size()),
                   corpus.rows * corpus.dim);
  ADAMINE_CHECK_EQ(static_cast<int64_t>(corpus.scales.size()), corpus.rows);
  io::wire::Writer writer(os);
  writer.WriteRaw(kQuantMagic, sizeof(kQuantMagic));
  writer.WriteU32(kQuantFormatVersion);
  writer.WriteI64(corpus.rows);
  writer.WriteI64(corpus.dim);
  writer.WriteBytes(corpus.codes.data(), corpus.codes.size());
  writer.WriteBytes(corpus.scales.data(),
                    corpus.scales.size() * sizeof(float));
  writer.WriteBytes(corpus.biases.data(),
                    corpus.biases.size() * sizeof(float));
  writer.WriteBytes(corpus.sum_abs_codes.data(),
                    corpus.sum_abs_codes.size() * sizeof(int32_t));
  writer.WriteBytes(corpus.recon_errors.data(),
                    corpus.recon_errors.size() * sizeof(float));
  writer.WriteBytes(corpus.max_abs.data(),
                    corpus.max_abs.size() * sizeof(float));
  const uint32_t crc = writer.crc();
  writer.WriteRaw(&crc, sizeof(crc));
  if (!writer.ok()) {
    return Status::Internal("failed writing quantized corpus");
  }
  return Status::Ok();
}

StatusOr<QuantizedCorpus> ReadQuantizedCorpus(std::istream& is) {
  io::wire::Reader reader(is);
  ADAMINE_RETURN_IF_ERROR(ExpectQuantMagic(reader));
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kQuantFormatVersion) {
    return Status::DataLoss("unsupported quantized-corpus version " +
                            std::to_string(*version) + " (want " +
                            std::to_string(kQuantFormatVersion) + ")");
  }
  auto rows = reader.ReadI64();
  if (!rows.ok()) return rows.status();
  auto dim = reader.ReadI64();
  if (!dim.ok()) return dim.status();
  if (*rows < 0 || *rows > kMaxQuantRows || *dim <= 0 ||
      *dim > kernel::kInt8DotMaxElems) {
    return Status::DataLoss("quantized-corpus header out of range: rows=" +
                            std::to_string(*rows) + " dim=" +
                            std::to_string(*dim));
  }
  // Reject headers that announce more payload than the stream holds before
  // allocating for them (the hostile-input rule shared with ADMT readers).
  const int64_t payload =
      *rows * *dim + *rows * (4 * static_cast<int64_t>(sizeof(float)) +
                              static_cast<int64_t>(sizeof(int32_t)));
  const int64_t remaining = reader.RemainingBytes();
  if (remaining >= 0 && payload > remaining) {
    return Status::DataLoss(
        "quantized corpus truncated: header wants " +
        std::to_string(payload) + " payload bytes, stream has " +
        std::to_string(remaining));
  }
  QuantizedCorpus out;
  out.rows = *rows;
  out.dim = *dim;
  out.codes.resize(static_cast<size_t>(*rows * *dim));
  out.scales.resize(static_cast<size_t>(*rows));
  out.biases.resize(static_cast<size_t>(*rows));
  out.sum_abs_codes.resize(static_cast<size_t>(*rows));
  out.recon_errors.resize(static_cast<size_t>(*rows));
  out.max_abs.resize(static_cast<size_t>(*rows));
  ADAMINE_RETURN_IF_ERROR(
      reader.ReadBytes(out.codes.data(), out.codes.size()));
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      out.scales.data(), out.scales.size() * sizeof(float)));
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      out.biases.data(), out.biases.size() * sizeof(float)));
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      out.sum_abs_codes.data(), out.sum_abs_codes.size() * sizeof(int32_t)));
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      out.recon_errors.data(), out.recon_errors.size() * sizeof(float)));
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      out.max_abs.data(), out.max_abs.size() * sizeof(float)));
  ADAMINE_RETURN_IF_ERROR(io::wire::VerifyCrc(reader, "quantized corpus"));
  return out;
}

Status SaveQuantizedCorpus(const std::string& path,
                           const QuantizedCorpus& corpus) {
  return io::AtomicWriteFile(path, [&corpus](std::ostream& os) {
    return WriteQuantizedCorpus(os, corpus);
  });
}

StatusOr<QuantizedCorpus> LoadQuantizedCorpus(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("cannot open quantized corpus: " + path);
  }
  return ReadQuantizedCorpus(is);
}

}  // namespace adamine::quant
