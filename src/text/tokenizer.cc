#include "text/tokenizer.h"

#include <cctype>

namespace adamine::text {

namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsTokenChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::vector<std::string>> SplitSentences(std::string_view text) {
  std::vector<std::vector<std::string>> sentences;
  size_t start = 0;
  auto flush = [&](size_t end) {
    if (end > start) {
      auto tokens = Tokenize(text.substr(start, end - start));
      if (!tokens.empty()) sentences.push_back(std::move(tokens));
    }
  };
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '.' || c == '!' || c == '?' || c == ';' || c == '\n') {
      flush(i);
      start = i + 1;
    }
  }
  flush(text.size());
  return sentences;
}

}  // namespace adamine::text
