#include "text/vocabulary.h"

#include "util/check.h"

namespace adamine::text {

int64_t Vocabulary::Add(std::string_view word) {
  auto it = word_to_id_.find(std::string(word));
  int64_t id;
  if (it == word_to_id_.end()) {
    id = static_cast<int64_t>(words_.size());
    words_.emplace_back(word);
    counts_.push_back(0);
    word_to_id_.emplace(words_.back(), id);
  } else {
    id = it->second;
  }
  ++counts_[static_cast<size_t>(id)];
  ++total_count_;
  return id;
}

void Vocabulary::AddAll(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) Add(t);
}

int64_t Vocabulary::AddCount(std::string_view word, int64_t count) {
  ADAMINE_CHECK_GT(count, 0);
  const int64_t id = Add(word);
  counts_[static_cast<size_t>(id)] += count - 1;
  total_count_ += count - 1;
  return id;
}

int64_t Vocabulary::IdOf(std::string_view word) const {
  auto it = word_to_id_.find(std::string(word));
  return it == word_to_id_.end() ? kUnknownId : it->second;
}

const std::string& Vocabulary::WordOf(int64_t id) const {
  ADAMINE_CHECK_GE(id, 0);
  ADAMINE_CHECK_LT(id, size());
  return words_[static_cast<size_t>(id)];
}

int64_t Vocabulary::CountOf(int64_t id) const {
  ADAMINE_CHECK_GE(id, 0);
  ADAMINE_CHECK_LT(id, size());
  return counts_[static_cast<size_t>(id)];
}

std::vector<int64_t> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int64_t> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(IdOf(t));
  return ids;
}

Vocabulary Vocabulary::Pruned(int64_t min_count) const {
  Vocabulary pruned;
  for (int64_t id = 0; id < size(); ++id) {
    const int64_t count = counts_[static_cast<size_t>(id)];
    if (count < min_count) continue;
    const std::string& word = words_[static_cast<size_t>(id)];
    const int64_t new_id = static_cast<int64_t>(pruned.words_.size());
    pruned.words_.push_back(word);
    pruned.counts_.push_back(count);
    pruned.word_to_id_.emplace(word, new_id);
    pruned.total_count_ += count;
  }
  return pruned;
}

}  // namespace adamine::text
