#ifndef ADAMINE_TEXT_TOKENIZER_H_
#define ADAMINE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace adamine::text {

/// Splits `text` into lowercase word tokens. Alphanumeric runs (plus
/// underscores, so multi-word ingredient names like "olive_oil" survive as
/// one token) are kept; everything else separates tokens. Numbers are kept
/// as tokens — quantities matter in recipes.
std::vector<std::string> Tokenize(std::string_view text);

/// Splits instruction text into sentences on '.', '!', '?', ';' and
/// newlines, then tokenizes each sentence. Empty sentences are dropped.
std::vector<std::vector<std::string>> SplitSentences(std::string_view text);

}  // namespace adamine::text

#endif  // ADAMINE_TEXT_TOKENIZER_H_
