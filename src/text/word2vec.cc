#include "text/word2vec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernel/kernel.h"
#include "kernel/reduce.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::text {

Status Word2VecConfig::Validate() const {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (negatives < 0) {
    return Status::InvalidArgument("negatives must be non-negative");
  }
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (subsample < 0.0) {
    return Status::InvalidArgument("subsample must be non-negative");
  }
  return Status::Ok();
}

StatusOr<Word2Vec> Word2Vec::Create(int64_t vocab_size,
                                    const Word2VecConfig& config) {
  if (vocab_size <= 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  return Word2Vec(vocab_size, config);
}

Word2Vec::Word2Vec(int64_t vocab_size, const Word2VecConfig& config)
    : config_(config), rng_(config.seed) {
  // word2vec's standard init: input U(-0.5/dim, 0.5/dim), output zeros.
  const float bound = 0.5f / static_cast<float>(config.dim);
  input_ = Tensor::RandUniform({vocab_size, config.dim}, rng_, -bound, bound);
  output_ = Tensor({vocab_size, config.dim});
  counts_.assign(static_cast<size_t>(vocab_size), 0);
}

void Word2Vec::BuildNegativeTable(
    const std::vector<std::vector<int64_t>>& corpus) {
  // Corpus frequency pass on the kernel pool: per-chunk integer count
  // vectors merged in chunk order, so the tallies are exact and identical
  // for every thread count.
  std::fill(counts_.begin(), counts_.end(), 0);
  const int64_t num_sentences = static_cast<int64_t>(corpus.size());
  const int64_t grain = 64;
  const int64_t chunks = kernel::NumChunks(num_sentences, grain);
  std::vector<std::vector<int64_t>> partial_counts(
      static_cast<size_t>(chunks));
  kernel::ParallelForChunks(
      num_sentences, grain, [&](int64_t c, int64_t begin, int64_t end) {
        std::vector<int64_t>& local = partial_counts[static_cast<size_t>(c)];
        local.assign(counts_.size(), 0);
        for (int64_t s = begin; s < end; ++s) {
          for (int64_t id : corpus[static_cast<size_t>(s)]) {
            if (id < 0) continue;
            ADAMINE_CHECK_LT(id, vocab_size());
            ++local[static_cast<size_t>(id)];
          }
        }
      });
  for (const auto& local : partial_counts) {
    for (size_t id = 0; id < local.size(); ++id) counts_[id] += local[id];
  }
  // Table of ids with multiplicity proportional to count^0.75.
  constexpr int64_t kTableSize = 1 << 16;
  double total = 0.0;
  for (int64_t c : counts_) total += std::pow(static_cast<double>(c), 0.75);
  negative_table_.clear();
  negative_table_.reserve(kTableSize);
  if (total <= 0.0) return;
  for (int64_t id = 0; id < vocab_size(); ++id) {
    const double share =
        std::pow(static_cast<double>(counts_[static_cast<size_t>(id)]), 0.75) /
        total;
    const int64_t slots =
        static_cast<int64_t>(std::llround(share * kTableSize));
    for (int64_t s = 0; s < slots; ++s) negative_table_.push_back(id);
  }
  if (negative_table_.empty()) negative_table_.push_back(0);
}

void Word2Vec::Train(const std::vector<std::vector<int64_t>>& corpus) {
  BuildNegativeTable(corpus);
  const int64_t dim = config_.dim;
  const float lr = static_cast<float>(config_.learning_rate);
  const double total_tokens = static_cast<double>(std::accumulate(
      counts_.begin(), counts_.end(), int64_t{0}));

  std::vector<float> grad_center(static_cast<size_t>(dim));
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& sentence : corpus) {
      // Subsample frequent words, drop unknowns.
      std::vector<int64_t> kept;
      kept.reserve(sentence.size());
      for (int64_t id : sentence) {
        if (id < 0) continue;
        if (config_.subsample > 0.0 && total_tokens > 0.0) {
          const double freq =
              static_cast<double>(counts_[static_cast<size_t>(id)]) /
              total_tokens;
          if (freq > config_.subsample) {
            const double keep_prob =
                std::sqrt(config_.subsample / freq);
            if (!rng_.Bernoulli(keep_prob)) continue;
          }
        }
        kept.push_back(id);
      }
      const int64_t n = static_cast<int64_t>(kept.size());
      for (int64_t pos = 0; pos < n; ++pos) {
        const int64_t center = kept[static_cast<size_t>(pos)];
        // Dynamic window as in the reference implementation.
        const int64_t reduced = 1 + rng_.UniformInt(config_.window);
        float* vc = input_.data() + center * dim;
        for (int64_t off = -reduced; off <= reduced; ++off) {
          if (off == 0) continue;
          const int64_t cpos = pos + off;
          if (cpos < 0 || cpos >= n) continue;
          const int64_t context = kept[static_cast<size_t>(cpos)];
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive + `negatives` sampled negatives.
          for (int64_t s = 0; s <= config_.negatives; ++s) {
            int64_t target;
            float label;
            if (s == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = negative_table_[static_cast<size_t>(
                  rng_.UniformInt(static_cast<int64_t>(
                      negative_table_.size())))];
              if (target == context) continue;
              label = 0.0f;
            }
            float* vo = output_.data() + target * dim;
            // The SGD walk itself is a strict sequential dependence chain
            // (every update feeds the next dot), so it stays on one thread;
            // the dot routes through the kernel layer's reduction, whose
            // base case is the exact left fold used here before.
            const double dot = kernel::PairwiseDot(vc, vo, dim);
            const float pred =
                1.0f / (1.0f + std::exp(-static_cast<float>(dot)));
            const float g = (label - pred) * lr;
            for (int64_t d = 0; d < dim; ++d) {
              grad_center[static_cast<size_t>(d)] += g * vo[d];
              vo[d] += g * vc[d];
            }
          }
          for (int64_t d = 0; d < dim; ++d) {
            vc[d] += grad_center[static_cast<size_t>(d)];
          }
        }
      }
    }
  }
}

std::vector<int64_t> Word2Vec::MostSimilar(int64_t id, int64_t k) const {
  ADAMINE_CHECK_GE(id, 0);
  ADAMINE_CHECK_LT(id, vocab_size());
  Tensor query = GatherRows(input_, {id});
  Tensor sims = CosineSimilarityMatrix(query, input_);
  std::vector<int64_t> order(static_cast<size_t>(vocab_size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return sims.At(0, a) > sims.At(0, b);
  });
  std::vector<int64_t> result;
  for (int64_t candidate : order) {
    if (candidate == id) continue;
    result.push_back(candidate);
    if (static_cast<int64_t>(result.size()) == k) break;
  }
  return result;
}

}  // namespace adamine::text
