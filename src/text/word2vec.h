#ifndef ADAMINE_TEXT_WORD2VEC_H_
#define ADAMINE_TEXT_WORD2VEC_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/status.h"

namespace adamine::text {

/// Configuration for skip-gram training.
struct Word2VecConfig {
  int64_t dim = 32;
  int64_t window = 4;
  int64_t negatives = 5;
  int64_t epochs = 3;
  double learning_rate = 0.025;
  /// Frequent-word subsampling threshold (word2vec's `-sample`); 0 disables.
  double subsample = 1e-3;
  uint64_t seed = 1234;

  /// Validates ranges; returns the first violated constraint.
  Status Validate() const;
};

/// Skip-gram with negative sampling (Mikolov et al. 2013), the algorithm the
/// paper uses to pretrain ingredient word embeddings. Trained directly with
/// per-pair logistic updates (the classic implementation), not through the
/// autograd stack, for speed.
class Word2Vec {
 public:
  /// `vocab_size` must cover every id appearing in the corpus.
  static StatusOr<Word2Vec> Create(int64_t vocab_size,
                                   const Word2VecConfig& config);

  /// Trains on `corpus`: a list of sentences of word ids (-1 entries are
  /// skipped). May be called repeatedly to continue training.
  void Train(const std::vector<std::vector<int64_t>>& corpus);

  /// Input (center-word) embedding table [vocab, dim] — the embeddings one
  /// normally keeps.
  const Tensor& embeddings() const { return input_; }

  /// Cosine-similarity nearest neighbours of `id` among all words.
  std::vector<int64_t> MostSimilar(int64_t id, int64_t k) const;

  int64_t vocab_size() const { return input_.rows(); }
  int64_t dim() const { return input_.cols(); }

 private:
  Word2Vec(int64_t vocab_size, const Word2VecConfig& config);

  /// Rebuilds the unigram^(3/4) negative-sampling table from corpus counts.
  void BuildNegativeTable(const std::vector<std::vector<int64_t>>& corpus);

  Word2VecConfig config_;
  Tensor input_;   // [vocab, dim]
  Tensor output_;  // [vocab, dim]
  std::vector<int64_t> negative_table_;
  std::vector<int64_t> counts_;
  Rng rng_;
};

}  // namespace adamine::text

#endif  // ADAMINE_TEXT_WORD2VEC_H_
