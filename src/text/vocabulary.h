#ifndef ADAMINE_TEXT_VOCABULARY_H_
#define ADAMINE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace adamine::text {

/// Bidirectional word <-> id mapping with occurrence counts. Ids are dense
/// and assigned in insertion order; id -1 is reserved as "unknown/padding"
/// throughout the library.
class Vocabulary {
 public:
  static constexpr int64_t kUnknownId = -1;

  Vocabulary() = default;

  /// Adds one occurrence of `word`; inserts it if new. Returns its id.
  int64_t Add(std::string_view word);

  /// Adds one occurrence of every token.
  void AddAll(const std::vector<std::string>& tokens);

  /// Adds `count` occurrences of `word` at once (count > 0); used when
  /// reloading a serialised vocabulary. Returns the word's id.
  int64_t AddCount(std::string_view word, int64_t count);

  /// The id of `word`, or kUnknownId.
  int64_t IdOf(std::string_view word) const;

  /// True if `word` is present.
  bool Contains(std::string_view word) const { return IdOf(word) >= 0; }

  /// The word with the given id. Requires 0 <= id < size().
  const std::string& WordOf(int64_t id) const;

  /// Occurrence count of id. Requires 0 <= id < size().
  int64_t CountOf(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(words_.size()); }

  /// Total token occurrences added.
  int64_t total_count() const { return total_count_; }

  /// Converts tokens to ids; unknown words map to kUnknownId.
  std::vector<int64_t> Encode(const std::vector<std::string>& tokens) const;

  /// Returns a vocabulary containing only words with count >= min_count
  /// (ids are re-assigned densely, preserving order).
  Vocabulary Pruned(int64_t min_count) const;

 private:
  std::unordered_map<std::string, int64_t> word_to_id_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace adamine::text

#endif  // ADAMINE_TEXT_VOCABULARY_H_
