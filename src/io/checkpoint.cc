#include "io/checkpoint.h"

#include <unordered_map>

#include "io/serialize.h"

namespace adamine::io {

Status SaveModel(const std::string& path,
                 const core::CrossModalModel& model) {
  std::vector<NamedTensor> bundle;
  for (const auto& p : model.Params()) {
    bundle.push_back({p.name, p.var.value()});
  }
  return SaveTensorBundle(path, bundle);
}

Status LoadModel(const std::string& path, core::CrossModalModel& model) {
  auto bundle = LoadTensorBundle(path);
  if (!bundle.ok()) return bundle.status();
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const auto& entry : *bundle) {
    if (!by_name.emplace(entry.name, &entry.tensor).second) {
      return Status::InvalidArgument("duplicate checkpoint entry: " +
                                     entry.name);
    }
  }
  auto params = model.Params();
  if (params.size() != bundle->size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count does not match the model");
  }
  // Validate everything before mutating anything.
  for (const auto& p : params) {
    auto it = by_name.find(p.name);
    if (it == by_name.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p.name);
    }
    if (!SameShape(p.var.value(), *it->second)) {
      return Status::InvalidArgument("shape mismatch for parameter: " +
                                     p.name);
    }
  }
  for (const auto& p : params) {
    const Tensor& src = *by_name.at(p.name);
    Tensor& dst = p.var.node()->value;
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
  return Status::Ok();
}

}  // namespace adamine::io
