#include "io/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "io/wire.h"

namespace adamine::io {

namespace {

constexpr char kCheckpointMagic[4] = {'A', 'D', 'M', 'C'};

/// Sanity ceilings for header-announced counts; real values are orders of
/// magnitude smaller, so anything larger is corruption.
constexpr int64_t kMaxParams = 1'000'000;
constexpr int64_t kMaxPoolSize = 100'000'000;
constexpr int64_t kMaxHistory = 10'000'000;

void WriteRngState(wire::Writer& writer, const RngState& state) {
  for (uint64_t word : state.s) writer.WriteU64(word);
  writer.WriteF64(state.cached_normal);
  writer.WriteU8(state.has_cached_normal ? 1 : 0);
}

StatusOr<RngState> ReadRngState(wire::Reader& reader) {
  RngState state;
  for (auto& word : state.s) {
    auto v = reader.ReadU64();
    if (!v.ok()) return v.status();
    word = *v;
  }
  auto cached = reader.ReadF64();
  if (!cached.ok()) return cached.status();
  state.cached_normal = *cached;
  auto flag = reader.ReadU8();
  if (!flag.ok()) return flag.status();
  if (*flag > 1) return Status::InvalidArgument("corrupt RNG state flag");
  state.has_cached_normal = *flag == 1;
  return state;
}

Status WritePool(wire::Writer& writer, const std::vector<int64_t>& pool) {
  writer.WriteI64(static_cast<int64_t>(pool.size()));
  for (int64_t v : pool) writer.WriteI64(v);
  return writer.ok() ? Status::Ok() : Status::Internal("stream write failed");
}

StatusOr<std::vector<int64_t>> ReadPool(wire::Reader& reader) {
  auto count = reader.ReadI64();
  if (!count.ok()) return count.status();
  if (*count < 0 || *count > kMaxPoolSize) {
    return Status::InvalidArgument("implausible sampler pool size");
  }
  const int64_t remaining = reader.RemainingBytes();
  if (remaining >= 0 && *count > remaining / 8) {
    return Status::InvalidArgument(
        "sampler pool announces more data than the stream holds");
  }
  std::vector<int64_t> pool(static_cast<size_t>(*count));
  for (auto& v : pool) {
    auto item = reader.ReadI64();
    if (!item.ok()) return item.status();
    v = *item;
  }
  return pool;
}

}  // namespace

std::vector<NamedTensor> NamedParamsOf(const core::CrossModalModel& model) {
  std::vector<NamedTensor> bundle;
  for (const auto& p : model.Params()) {
    bundle.push_back({p.name, p.var.value()});
  }
  return bundle;
}

Status ApplyNamedParams(const std::vector<NamedTensor>& bundle,
                        core::CrossModalModel& model) {
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const auto& entry : bundle) {
    if (!by_name.emplace(entry.name, &entry.tensor).second) {
      return Status::InvalidArgument("duplicate checkpoint entry: " +
                                     entry.name);
    }
  }
  auto params = model.Params();
  if (params.size() != bundle.size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count does not match the model");
  }
  // Validate everything before mutating anything.
  for (const auto& p : params) {
    auto it = by_name.find(p.name);
    if (it == by_name.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p.name);
    }
    if (!SameShape(p.var.value(), *it->second)) {
      return Status::InvalidArgument("shape mismatch for parameter: " +
                                     p.name);
    }
  }
  for (const auto& p : params) {
    const Tensor& src = *by_name.at(p.name);
    Tensor& dst = p.var.node()->value;
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
  return Status::Ok();
}

Status SaveModel(const std::string& path,
                 const core::CrossModalModel& model) {
  return SaveTensorBundle(path, NamedParamsOf(model));
}

Status LoadModel(const std::string& path, core::CrossModalModel& model) {
  auto bundle = LoadTensorBundle(path);
  if (!bundle.ok()) return bundle.status();
  return ApplyNamedParams(*bundle, model);
}

Status WriteTrainingCheckpoint(std::ostream& os,
                               const TrainingCheckpoint& checkpoint) {
  wire::Writer writer(os);
  writer.WriteRaw(kCheckpointMagic, 4);
  writer.WriteU32(kFormatVersion);

  writer.WriteI64(checkpoint.next_epoch);
  writer.WriteI64(checkpoint.consecutive_nonfinite);
  writer.WriteF64(checkpoint.best_val_medr);
  writer.WriteU8(checkpoint.has_best_snapshot ? 1 : 0);
  WriteRngState(writer, checkpoint.trainer_rng);

  ADAMINE_RETURN_IF_ERROR(WritePool(writer, checkpoint.sampler.labeled_pool));
  ADAMINE_RETURN_IF_ERROR(
      WritePool(writer, checkpoint.sampler.unlabeled_pool));
  writer.WriteU64(checkpoint.sampler.labeled_cursor);
  writer.WriteU64(checkpoint.sampler.unlabeled_cursor);
  WriteRngState(writer, checkpoint.sampler.rng);

  writer.WriteI64(static_cast<int64_t>(checkpoint.model_params.size()));
  for (const auto& entry : checkpoint.model_params) {
    writer.WriteI64(static_cast<int64_t>(entry.name.size()));
    writer.WriteBytes(entry.name.data(), entry.name.size());
    ADAMINE_RETURN_IF_ERROR(WriteTensorRecord(writer, entry.tensor));
  }

  writer.WriteI64(static_cast<int64_t>(checkpoint.adam_state.size()));
  for (const auto& slot : checkpoint.adam_state) {
    writer.WriteU8(slot.present ? 1 : 0);
    if (!slot.present) continue;
    writer.WriteI64(slot.t);
    ADAMINE_RETURN_IF_ERROR(WriteTensorRecord(writer, slot.m));
    ADAMINE_RETURN_IF_ERROR(WriteTensorRecord(writer, slot.v));
  }

  writer.WriteI64(checkpoint.has_best_snapshot
                      ? static_cast<int64_t>(checkpoint.best_snapshot.size())
                      : 0);
  if (checkpoint.has_best_snapshot) {
    for (const auto& t : checkpoint.best_snapshot) {
      ADAMINE_RETURN_IF_ERROR(WriteTensorRecord(writer, t));
    }
  }

  writer.WriteI64(static_cast<int64_t>(checkpoint.history.size()));
  for (const auto& e : checkpoint.history) {
    writer.WriteI64(e.epoch);
    writer.WriteF64(e.instance_loss);
    writer.WriteF64(e.semantic_loss);
    writer.WriteF64(e.cls_loss);
    writer.WriteF64(e.active_fraction_ins);
    writer.WriteF64(e.active_fraction_sem);
    writer.WriteF64(e.val_medr);
    writer.WriteF64(e.seconds);
    writer.WriteI64(e.nonfinite_batches);
  }

  const uint32_t crc = writer.crc();
  writer.WriteRaw(&crc, sizeof(crc));
  if (!writer.ok()) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<TrainingCheckpoint> ReadTrainingCheckpoint(std::istream& is) {
  wire::Reader reader(is);
  char magic[4];
  if (!reader.ReadRaw(magic, 4).ok() ||
      !std::equal(magic, magic + 4, kCheckpointMagic)) {
    return Status::InvalidArgument("bad magic for training checkpoint");
  }
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported training checkpoint version " +
        std::to_string(*version) + " (expected " +
        std::to_string(kFormatVersion) + ")");
  }

  TrainingCheckpoint ckpt;
  auto next_epoch = reader.ReadI64();
  if (!next_epoch.ok()) return next_epoch.status();
  if (*next_epoch < 0) {
    return Status::InvalidArgument("negative checkpoint epoch");
  }
  ckpt.next_epoch = *next_epoch;
  auto consecutive = reader.ReadI64();
  if (!consecutive.ok()) return consecutive.status();
  if (*consecutive < 0) {
    return Status::InvalidArgument("negative non-finite counter");
  }
  ckpt.consecutive_nonfinite = *consecutive;
  auto best = reader.ReadF64();
  if (!best.ok()) return best.status();
  ckpt.best_val_medr = *best;
  auto has_best = reader.ReadU8();
  if (!has_best.ok()) return has_best.status();
  if (*has_best > 1) {
    return Status::InvalidArgument("corrupt best-snapshot flag");
  }
  ckpt.has_best_snapshot = *has_best == 1;
  auto trainer_rng = ReadRngState(reader);
  if (!trainer_rng.ok()) return trainer_rng.status();
  ckpt.trainer_rng = *trainer_rng;

  auto labeled = ReadPool(reader);
  if (!labeled.ok()) return labeled.status();
  ckpt.sampler.labeled_pool = std::move(*labeled);
  auto unlabeled = ReadPool(reader);
  if (!unlabeled.ok()) return unlabeled.status();
  ckpt.sampler.unlabeled_pool = std::move(*unlabeled);
  auto labeled_cursor = reader.ReadU64();
  if (!labeled_cursor.ok()) return labeled_cursor.status();
  ckpt.sampler.labeled_cursor = *labeled_cursor;
  auto unlabeled_cursor = reader.ReadU64();
  if (!unlabeled_cursor.ok()) return unlabeled_cursor.status();
  ckpt.sampler.unlabeled_cursor = *unlabeled_cursor;
  auto sampler_rng = ReadRngState(reader);
  if (!sampler_rng.ok()) return sampler_rng.status();
  ckpt.sampler.rng = *sampler_rng;

  auto param_count = reader.ReadI64();
  if (!param_count.ok()) return param_count.status();
  if (*param_count < 0 || *param_count > kMaxParams) {
    return Status::InvalidArgument("implausible parameter count");
  }
  for (int64_t i = 0; i < *param_count; ++i) {
    auto name_len = reader.ReadI64();
    if (!name_len.ok()) return name_len.status();
    if (*name_len < 0 || *name_len > 4096) {
      return Status::InvalidArgument("implausible parameter name length");
    }
    std::string name(static_cast<size_t>(*name_len), '\0');
    ADAMINE_RETURN_IF_ERROR(
        reader.ReadBytes(name.data(), static_cast<size_t>(*name_len)));
    auto tensor = ReadTensorRecord(reader);
    if (!tensor.ok()) return tensor.status();
    ckpt.model_params.push_back({std::move(name), std::move(*tensor)});
  }

  auto slot_count = reader.ReadI64();
  if (!slot_count.ok()) return slot_count.status();
  if (*slot_count < 0 || *slot_count > kMaxParams) {
    return Status::InvalidArgument("implausible optimizer slot count");
  }
  for (int64_t i = 0; i < *slot_count; ++i) {
    optim::Adam::ParamState slot;
    auto present = reader.ReadU8();
    if (!present.ok()) return present.status();
    if (*present > 1) {
      return Status::InvalidArgument("corrupt optimizer slot flag");
    }
    slot.present = *present == 1;
    if (slot.present) {
      auto t = reader.ReadI64();
      if (!t.ok()) return t.status();
      if (*t < 0) return Status::InvalidArgument("negative Adam step count");
      slot.t = *t;
      auto m = ReadTensorRecord(reader);
      if (!m.ok()) return m.status();
      slot.m = std::move(*m);
      auto v = ReadTensorRecord(reader);
      if (!v.ok()) return v.status();
      slot.v = std::move(*v);
    }
    ckpt.adam_state.push_back(std::move(slot));
  }

  auto snapshot_count = reader.ReadI64();
  if (!snapshot_count.ok()) return snapshot_count.status();
  if (*snapshot_count < 0 || *snapshot_count > kMaxParams) {
    return Status::InvalidArgument("implausible snapshot tensor count");
  }
  if (ckpt.has_best_snapshot && *snapshot_count == 0) {
    return Status::InvalidArgument("best-snapshot flag set but no tensors");
  }
  for (int64_t i = 0; i < *snapshot_count; ++i) {
    auto tensor = ReadTensorRecord(reader);
    if (!tensor.ok()) return tensor.status();
    ckpt.best_snapshot.push_back(std::move(*tensor));
  }

  auto history_count = reader.ReadI64();
  if (!history_count.ok()) return history_count.status();
  if (*history_count < 0 || *history_count > kMaxHistory) {
    return Status::InvalidArgument("implausible history length");
  }
  for (int64_t i = 0; i < *history_count; ++i) {
    core::EpochStats e;
    auto epoch = reader.ReadI64();
    if (!epoch.ok()) return epoch.status();
    e.epoch = *epoch;
    StatusOr<double> fields[7] = {
        reader.ReadF64(), reader.ReadF64(), reader.ReadF64(),
        reader.ReadF64(), reader.ReadF64(), reader.ReadF64(),
        reader.ReadF64()};
    for (const auto& f : fields) {
      if (!f.ok()) return f.status();
    }
    e.instance_loss = *fields[0];
    e.semantic_loss = *fields[1];
    e.cls_loss = *fields[2];
    e.active_fraction_ins = *fields[3];
    e.active_fraction_sem = *fields[4];
    e.val_medr = *fields[5];
    e.seconds = *fields[6];
    auto skipped = reader.ReadI64();
    if (!skipped.ok()) return skipped.status();
    e.nonfinite_batches = *skipped;
    ckpt.history.push_back(e);
  }

  ADAMINE_RETURN_IF_ERROR(wire::VerifyCrc(reader, "training checkpoint"));
  return ckpt;
}

Status SaveTrainingCheckpoint(const std::string& path,
                              const TrainingCheckpoint& checkpoint) {
  return AtomicWriteFile(path, [&checkpoint](std::ostream& os) {
    return WriteTrainingCheckpoint(os, checkpoint);
  });
}

StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open for reading: " + path);
  return ReadTrainingCheckpoint(is);
}

}  // namespace adamine::io
