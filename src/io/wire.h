#ifndef ADAMINE_IO_WIRE_H_
#define ADAMINE_IO_WIRE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/status.h"

namespace adamine::io::wire {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant). Every
/// on-disk record carries one so that corruption and truncation are
/// detected at load time instead of materialising as garbage tensors.
class Crc32 {
 public:
  void Update(const void* data, size_t n);
  /// The finalised checksum of everything fed so far (Update may continue
  /// afterwards; value() is side-effect free).
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// Little-endian binary writer over an ostream. Every checksummed write
/// feeds the running CRC, and every write call is a registered failure
/// boundary (fault::kSerializeWrite), which is how the crash-simulation
/// tests interrupt a save at each point of the format. After any failed
/// write the underlying stream has failbit/badbit set and further writes
/// are no-ops; callers check ok() (or the stream) once at the end.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  /// CRC-tracked writes.
  void WriteBytes(const void* p, size_t n);
  void WriteU8(uint8_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

  /// Untracked write, for bytes outside the checksummed region (the leading
  /// magic and the trailing CRC itself).
  void WriteRaw(const void* p, size_t n);

  uint32_t crc() const { return crc_.value(); }
  bool ok() const;

 private:
  std::ostream& os_;
  Crc32 crc_;
};

/// Little-endian binary reader mirroring Writer: checksummed reads feed the
/// running CRC so the caller can compare against the stored checksum after
/// the payload. All reads fail cleanly on truncation with a descriptive
/// kDataLoss Status (wanted vs got byte counts) — never a partial-garbage
/// value and never a CHECK abort, because the bytes may come from an
/// untrusted socket peer (see net::ShardServer), where a torn frame must
/// be survivable.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  /// CRC-tracked reads.
  Status ReadBytes(void* p, size_t n);
  StatusOr<uint8_t> ReadU8();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<double> ReadF64();

  /// Untracked read (magic / stored CRC).
  Status ReadRaw(void* p, size_t n);

  /// Bytes left before EOF if the stream is seekable, -1 otherwise. Used to
  /// reject headers that announce more payload than the file holds *before*
  /// allocating for them.
  int64_t RemainingBytes();

  uint32_t crc() const { return crc_.value(); }

 private:
  std::istream& is_;
  Crc32 crc_;
};

/// Reads `is`'s trailing stored CRC and compares it with `reader.crc()`.
/// Truncation and mismatch both surface as kDataLoss.
Status VerifyCrc(Reader& reader, const std::string& what);

}  // namespace adamine::io::wire

#endif  // ADAMINE_IO_WIRE_H_
