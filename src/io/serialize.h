#ifndef ADAMINE_IO_SERIALIZE_H_
#define ADAMINE_IO_SERIALIZE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/wire.h"
#include "tensor/tensor.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace adamine::io {

/// On-disk format version shared by the ADMT / ADMB / ADMC records. Version
/// 2 added the version field itself plus CRC-32 checksums; readers reject
/// any other version with a clean Status instead of misparsing.
inline constexpr uint32_t kFormatVersion = 2;

/// Binary tensor format: magic "ADMT", u32 format version, i64 ndim,
/// i64 dims..., f32 data, u32 CRC-32 of everything after the magic.
/// All integers little-endian (the only platform this library targets).
/// Readers validate the version, rank, extents, and element count against
/// the bytes actually available *before* allocating, and verify the CRC, so
/// corrupt or truncated input yields a Status, never a garbage tensor.
Status WriteTensor(std::ostream& os, const Tensor& tensor);
StatusOr<Tensor> ReadTensor(std::istream& is);

/// Tensor record primitives against an open wire Writer/Reader, used to
/// embed tensors inside larger checksummed containers (bundles, training
/// checkpoints). The record carries its own CRC; its bytes also feed the
/// container's running CRC.
Status WriteTensorRecord(wire::Writer& writer, const Tensor& tensor);
StatusOr<Tensor> ReadTensorRecord(wire::Reader& reader);

/// Named tensor bundle: magic "ADMB", u32 format version, i64 count, then
/// per entry a length-prefixed name and a tensor record, then a u32 CRC-32
/// covering everything after the magic. This is the on-disk form of a model
/// checkpoint (CrossModalModel::SnapshotParams + names).
struct NamedTensor {
  std::string name;
  Tensor tensor;
};

Status WriteTensorBundle(std::ostream& os,
                         const std::vector<NamedTensor>& bundle);
StatusOr<std::vector<NamedTensor>> ReadTensorBundle(std::istream& is);

/// File-path conveniences. SaveTensorBundle writes atomically (see
/// AtomicWriteFile), so a crash mid-save never clobbers an existing file.
Status SaveTensorBundle(const std::string& path,
                        const std::vector<NamedTensor>& bundle);
StatusOr<std::vector<NamedTensor>> LoadTensorBundle(const std::string& path);

/// Runs `write` against a stream on `path + ".tmp"`, flushes and fsyncs
/// the temp file, renames it onto `path`, then fsyncs the parent directory
/// — so `path` atomically transitions from its old content to the new
/// content, a crash at any point leaves the old file intact (at worst plus
/// a stale .tmp, which readers never touch), and once the call returns Ok
/// the new content survives power loss (rename alone is atomic but not
/// durable: without the fsync pair the kernel may still hold both the data
/// and the directory entry in cache). A failed fsync — including the
/// injected io.fsync.fail fault — is a descriptive error, never a silent
/// claim of durability. On any failure before the rename the temp file is
/// removed and a non-OK Status returned.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& write);

/// Vocabulary as text: one "word<TAB>count" line per id, in id order.
Status WriteVocabulary(std::ostream& os, const text::Vocabulary& vocab);
StatusOr<text::Vocabulary> ReadVocabulary(std::istream& is);

}  // namespace adamine::io

#endif  // ADAMINE_IO_SERIALIZE_H_
