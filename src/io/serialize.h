#ifndef ADAMINE_IO_SERIALIZE_H_
#define ADAMINE_IO_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace adamine::io {

/// Binary tensor format: magic "ADMT", i64 ndim, i64 dims..., f32 data.
/// All integers little-endian (the only platform this library targets).
Status WriteTensor(std::ostream& os, const Tensor& tensor);
StatusOr<Tensor> ReadTensor(std::istream& is);

/// Named tensor bundle: magic "ADMB", i64 count, then per entry a
/// length-prefixed name and a tensor record. This is the on-disk form of a
/// model checkpoint (CrossModalModel::SnapshotParams + names).
struct NamedTensor {
  std::string name;
  Tensor tensor;
};

Status WriteTensorBundle(std::ostream& os,
                         const std::vector<NamedTensor>& bundle);
StatusOr<std::vector<NamedTensor>> ReadTensorBundle(std::istream& is);

/// File-path conveniences.
Status SaveTensorBundle(const std::string& path,
                        const std::vector<NamedTensor>& bundle);
StatusOr<std::vector<NamedTensor>> LoadTensorBundle(const std::string& path);

/// Vocabulary as text: one "word<TAB>count" line per id, in id order.
Status WriteVocabulary(std::ostream& os, const text::Vocabulary& vocab);
StatusOr<text::Vocabulary> ReadVocabulary(std::istream& is);

}  // namespace adamine::io

#endif  // ADAMINE_IO_SERIALIZE_H_
