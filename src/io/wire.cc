#include "io/wire.h"

#include <array>
#include <istream>
#include <ostream>

#include "util/fault.h"

namespace adamine::io::wire {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  uint32_t c = state_;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Writer::WriteBytes(const void* p, size_t n) {
  if (fault::ShouldFail(fault::kSerializeWrite)) {
    os_.setstate(std::ios::badbit);
  }
  if (!os_) return;
  os_.write(static_cast<const char*>(p),
            static_cast<std::streamsize>(n));
  if (os_) crc_.Update(p, n);
}

void Writer::WriteRaw(const void* p, size_t n) {
  if (fault::ShouldFail(fault::kSerializeWrite)) {
    os_.setstate(std::ios::badbit);
  }
  if (!os_) return;
  os_.write(static_cast<const char*>(p),
            static_cast<std::streamsize>(n));
}

bool Writer::ok() const { return static_cast<bool>(os_); }

Status Reader::ReadBytes(void* p, size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!is_) {
    return Status::DataLoss(
        "truncated stream: wanted " + std::to_string(n) + " bytes, got " +
        std::to_string(is_.gcount()));
  }
  crc_.Update(p, n);
  return Status::Ok();
}

StatusOr<uint8_t> Reader::ReadU8() {
  uint8_t v = 0;
  ADAMINE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint32_t> Reader::ReadU32() {
  uint32_t v = 0;
  ADAMINE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint64_t> Reader::ReadU64() {
  uint64_t v = 0;
  ADAMINE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<int64_t> Reader::ReadI64() {
  int64_t v = 0;
  ADAMINE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<double> Reader::ReadF64() {
  double v = 0.0;
  ADAMINE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

Status Reader::ReadRaw(void* p, size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!is_) {
    return Status::DataLoss(
        "truncated stream: wanted " + std::to_string(n) + " bytes, got " +
        std::to_string(is_.gcount()));
  }
  return Status::Ok();
}

int64_t Reader::RemainingBytes() {
  const std::istream::pos_type here = is_.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  is_.seekg(0, std::ios::end);
  const std::istream::pos_type end = is_.tellg();
  is_.seekg(here);
  if (end == std::istream::pos_type(-1) || !is_) {
    is_.clear();
    is_.seekg(here);
    return -1;
  }
  return static_cast<int64_t>(end - here);
}

Status VerifyCrc(Reader& reader, const std::string& what) {
  const uint32_t computed = reader.crc();
  uint32_t stored = 0;
  if (!reader.ReadRaw(&stored, sizeof(stored)).ok()) {
    return Status::DataLoss("truncated " + what + " (missing CRC)");
  }
  if (stored != computed) {
    return Status::DataLoss(what + " CRC mismatch (corrupt or torn bytes)");
  }
  return Status::Ok();
}

}  // namespace adamine::io::wire
