#include "io/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace adamine::io {

namespace {

constexpr char kTensorMagic[4] = {'A', 'D', 'M', 'T'};
constexpr char kBundleMagic[4] = {'A', 'D', 'M', 'B'};

void WriteI64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

StatusOr<int64_t> ReadI64(std::istream& is) {
  int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) return Status::InvalidArgument("truncated stream reading i64");
  return v;
}

Status ExpectMagic(std::istream& is, const char expected[4],
                   const char* what) {
  char magic[4];
  is.read(magic, 4);
  if (!is || !std::equal(magic, magic + 4, expected)) {
    return Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  return Status::Ok();
}

}  // namespace

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  if (!tensor.defined()) {
    return Status::InvalidArgument("cannot serialise an undefined tensor");
  }
  os.write(kTensorMagic, 4);
  WriteI64(os, tensor.ndim());
  for (int64_t d = 0; d < tensor.ndim(); ++d) WriteI64(os, tensor.dim(d));
  os.write(reinterpret_cast<const char*>(tensor.data()),
           static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!os) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<Tensor> ReadTensor(std::istream& is) {
  ADAMINE_RETURN_IF_ERROR(ExpectMagic(is, kTensorMagic, "tensor"));
  auto ndim = ReadI64(is);
  if (!ndim.ok()) return ndim.status();
  if (*ndim <= 0 || *ndim > 8) {
    return Status::InvalidArgument("implausible tensor rank");
  }
  std::vector<int64_t> shape;
  int64_t numel = 1;
  for (int64_t d = 0; d < *ndim; ++d) {
    auto extent = ReadI64(is);
    if (!extent.ok()) return extent.status();
    if (*extent <= 0 || *extent > (int64_t{1} << 32)) {
      return Status::InvalidArgument("implausible tensor extent");
    }
    shape.push_back(*extent);
    numel *= *extent;
  }
  Tensor tensor(shape);
  is.read(reinterpret_cast<char*>(tensor.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!is) return Status::InvalidArgument("truncated tensor data");
  return tensor;
}

Status WriteTensorBundle(std::ostream& os,
                         const std::vector<NamedTensor>& bundle) {
  os.write(kBundleMagic, 4);
  WriteI64(os, static_cast<int64_t>(bundle.size()));
  for (const auto& entry : bundle) {
    WriteI64(os, static_cast<int64_t>(entry.name.size()));
    os.write(entry.name.data(),
             static_cast<std::streamsize>(entry.name.size()));
    ADAMINE_RETURN_IF_ERROR(WriteTensor(os, entry.tensor));
  }
  if (!os) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<std::vector<NamedTensor>> ReadTensorBundle(std::istream& is) {
  ADAMINE_RETURN_IF_ERROR(ExpectMagic(is, kBundleMagic, "bundle"));
  auto count = ReadI64(is);
  if (!count.ok()) return count.status();
  if (*count < 0 || *count > 1'000'000) {
    return Status::InvalidArgument("implausible bundle entry count");
  }
  std::vector<NamedTensor> bundle;
  bundle.reserve(static_cast<size_t>(*count));
  for (int64_t i = 0; i < *count; ++i) {
    auto name_len = ReadI64(is);
    if (!name_len.ok()) return name_len.status();
    if (*name_len < 0 || *name_len > 4096) {
      return Status::InvalidArgument("implausible name length");
    }
    std::string name(static_cast<size_t>(*name_len), '\0');
    is.read(name.data(), *name_len);
    if (!is) return Status::InvalidArgument("truncated entry name");
    auto tensor = ReadTensor(is);
    if (!tensor.ok()) return tensor.status();
    bundle.push_back({std::move(name), std::move(tensor.value())});
  }
  return bundle;
}

Status SaveTensorBundle(const std::string& path,
                        const std::vector<NamedTensor>& bundle) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::NotFound("cannot open for writing: " + path);
  return WriteTensorBundle(os, bundle);
}

StatusOr<std::vector<NamedTensor>> LoadTensorBundle(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open for reading: " + path);
  return ReadTensorBundle(is);
}

Status WriteVocabulary(std::ostream& os, const text::Vocabulary& vocab) {
  for (int64_t id = 0; id < vocab.size(); ++id) {
    os << vocab.WordOf(id) << '\t' << vocab.CountOf(id) << '\n';
  }
  if (!os) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<text::Vocabulary> ReadVocabulary(std::istream& is) {
  text::Vocabulary vocab;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("vocabulary line missing tab: " + line);
    }
    const std::string word = line.substr(0, tab);
    int64_t count = 0;
    try {
      count = std::stoll(line.substr(tab + 1));
    } catch (...) {
      return Status::InvalidArgument("bad count in line: " + line);
    }
    if (word.empty() || count <= 0) {
      return Status::InvalidArgument("bad vocabulary entry: " + line);
    }
    vocab.AddCount(word, count);
  }
  return vocab;
}

}  // namespace adamine::io
