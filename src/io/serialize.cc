#include "io/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>

#include "util/fault.h"

namespace adamine::io {

namespace {

constexpr char kTensorMagic[4] = {'A', 'D', 'M', 'T'};
constexpr char kBundleMagic[4] = {'A', 'D', 'M', 'B'};

/// Hard ceiling on elements per tensor, a backstop for non-seekable streams
/// where the header cannot be checked against the file size (2^31 floats =
/// 8 GiB, far beyond anything this library produces).
constexpr int64_t kMaxTensorElems = int64_t{1} << 31;
constexpr int64_t kMaxExtent = int64_t{1} << 32;
constexpr int64_t kMaxBundleEntries = 1'000'000;
constexpr int64_t kMaxNameLen = 4096;

Status ExpectMagic(wire::Reader& reader, const char expected[4],
                   const char* what) {
  char magic[4];
  if (!reader.ReadRaw(magic, 4).ok() ||
      !std::equal(magic, magic + 4, expected)) {
    return Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  return Status::Ok();
}

Status ExpectVersion(wire::Reader& reader, const char* what) {
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::InvalidArgument(
        std::string("unsupported ") + what + " format version " +
        std::to_string(*version) + " (expected " +
        std::to_string(kFormatVersion) + ")");
  }
  return Status::Ok();
}

/// The per-record checksum, computed from the in-memory fields so the same
/// function serves the writer (before streaming) and the reader (after).
uint32_t TensorRecordCrc(const Tensor& tensor) {
  wire::Crc32 crc;
  const uint32_t version = kFormatVersion;
  crc.Update(&version, sizeof(version));
  const int64_t ndim = tensor.ndim();
  crc.Update(&ndim, sizeof(ndim));
  for (int64_t d = 0; d < ndim; ++d) {
    const int64_t extent = tensor.dim(d);
    crc.Update(&extent, sizeof(extent));
  }
  crc.Update(tensor.data(),
             static_cast<size_t>(tensor.numel()) * sizeof(float));
  return crc.value();
}

/// fsyncs `path` (a file opened read-only, or a directory with
/// O_DIRECTORY), honoring the kIoFsync fault point. Durability, not
/// atomicity: rename alone orders nothing against power loss.
Status SyncPath(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for fsync");
  }
  if (fault::ShouldFail(fault::kIoFsync) || ::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed for " + path);
  }
  ::close(fd);
  return Status::Ok();
}

std::string ParentDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status WriteTensorRecord(wire::Writer& writer, const Tensor& tensor) {
  if (!tensor.defined()) {
    return Status::InvalidArgument("cannot serialise an undefined tensor");
  }
  writer.WriteBytes(kTensorMagic, 4);
  writer.WriteU32(kFormatVersion);
  writer.WriteI64(tensor.ndim());
  for (int64_t d = 0; d < tensor.ndim(); ++d) writer.WriteI64(tensor.dim(d));
  writer.WriteBytes(tensor.data(),
                    static_cast<size_t>(tensor.numel()) * sizeof(float));
  writer.WriteU32(TensorRecordCrc(tensor));
  if (!writer.ok()) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<Tensor> ReadTensorRecord(wire::Reader& reader) {
  char magic[4];
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(magic, 4));
  if (!std::equal(magic, magic + 4, kTensorMagic)) {
    return Status::InvalidArgument("bad magic for tensor");
  }
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported tensor format version " + std::to_string(*version) +
        " (expected " + std::to_string(kFormatVersion) + ")");
  }
  auto ndim = reader.ReadI64();
  if (!ndim.ok()) return ndim.status();
  if (*ndim <= 0 || *ndim > 8) {
    return Status::InvalidArgument("implausible tensor rank");
  }
  std::vector<int64_t> shape;
  int64_t numel = 1;
  for (int64_t d = 0; d < *ndim; ++d) {
    auto extent = reader.ReadI64();
    if (!extent.ok()) return extent.status();
    if (*extent <= 0 || *extent > kMaxExtent) {
      return Status::InvalidArgument("implausible tensor extent");
    }
    if (numel > kMaxTensorElems / *extent) {
      return Status::InvalidArgument("implausible tensor element count");
    }
    shape.push_back(*extent);
    numel *= *extent;
  }
  // Check the announced payload against the bytes actually present before
  // allocating; a flipped bit in a dim must not trigger a huge allocation.
  const int64_t remaining = reader.RemainingBytes();
  if (remaining >= 0 &&
      numel > remaining / static_cast<int64_t>(sizeof(float))) {
    return Status::DataLoss(
        "tensor header announces more data than the stream holds");
  }
  Tensor tensor(shape);
  ADAMINE_RETURN_IF_ERROR(reader.ReadBytes(
      tensor.data(), static_cast<size_t>(numel) * sizeof(float)));
  auto stored_crc = reader.ReadU32();
  if (!stored_crc.ok()) {
    return Status::DataLoss("truncated tensor record (missing CRC)");
  }
  if (*stored_crc != TensorRecordCrc(tensor)) {
    return Status::DataLoss("tensor record CRC mismatch (corrupt)");
  }
  return tensor;
}

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  wire::Writer writer(os);
  return WriteTensorRecord(writer, tensor);
}

StatusOr<Tensor> ReadTensor(std::istream& is) {
  wire::Reader reader(is);
  return ReadTensorRecord(reader);
}

Status WriteTensorBundle(std::ostream& os,
                         const std::vector<NamedTensor>& bundle) {
  wire::Writer writer(os);
  writer.WriteRaw(kBundleMagic, 4);
  writer.WriteU32(kFormatVersion);
  writer.WriteI64(static_cast<int64_t>(bundle.size()));
  for (const auto& entry : bundle) {
    writer.WriteI64(static_cast<int64_t>(entry.name.size()));
    writer.WriteBytes(entry.name.data(), entry.name.size());
    ADAMINE_RETURN_IF_ERROR(WriteTensorRecord(writer, entry.tensor));
  }
  const uint32_t crc = writer.crc();
  writer.WriteRaw(&crc, sizeof(crc));
  if (!writer.ok()) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<std::vector<NamedTensor>> ReadTensorBundle(std::istream& is) {
  wire::Reader reader(is);
  ADAMINE_RETURN_IF_ERROR(ExpectMagic(reader, kBundleMagic, "bundle"));
  ADAMINE_RETURN_IF_ERROR(ExpectVersion(reader, "bundle"));
  auto count = reader.ReadI64();
  if (!count.ok()) return count.status();
  if (*count < 0 || *count > kMaxBundleEntries) {
    return Status::InvalidArgument("implausible bundle entry count");
  }
  // The smallest possible entry is well over 16 bytes; reject counts the
  // stream cannot possibly hold before reserving for them.
  const int64_t remaining = reader.RemainingBytes();
  if (remaining >= 0 && *count > remaining / 16) {
    return Status::InvalidArgument(
        "bundle header announces more entries than the stream holds");
  }
  std::vector<NamedTensor> bundle;
  bundle.reserve(static_cast<size_t>(std::min<int64_t>(*count, 4096)));
  for (int64_t i = 0; i < *count; ++i) {
    auto name_len = reader.ReadI64();
    if (!name_len.ok()) return name_len.status();
    if (*name_len < 0 || *name_len > kMaxNameLen) {
      return Status::InvalidArgument("implausible name length");
    }
    std::string name(static_cast<size_t>(*name_len), '\0');
    ADAMINE_RETURN_IF_ERROR(
        reader.ReadBytes(name.data(), static_cast<size_t>(*name_len)));
    auto tensor = ReadTensorRecord(reader);
    if (!tensor.ok()) return tensor.status();
    bundle.push_back({std::move(name), std::move(tensor.value())});
  }
  ADAMINE_RETURN_IF_ERROR(wire::VerifyCrc(reader, "bundle"));
  return bundle;
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  Status status = Status::Ok();
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::NotFound("cannot open for writing: " + tmp);
    }
    // Under an armed byte-budget fault, interpose a streambuf that fails
    // all writes past the budget — simulating a crash / full disk partway
    // through the file.
    std::unique_ptr<fault::FaultInjectingStreambuf> faulty;
    std::ostream os(file.rdbuf());
    const int64_t budget = fault::ArmedSkip(fault::kAtomicWriteBytes);
    if (budget >= 0) {
      faulty = std::make_unique<fault::FaultInjectingStreambuf>(file.rdbuf(),
                                                                budget);
      os.rdbuf(faulty.get());
    }
    status = write(os);
    os.flush();
    if (status.ok() && !os) {
      status = Status::Internal("write failed for " + tmp);
    }
    file.flush();
    if (status.ok() && !file) {
      status = Status::Internal("flush failed for " + tmp);
    }
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  // The temp file's bytes must be on stable storage before the rename makes
  // them reachable under `path` — otherwise a power loss can publish a
  // zero-length or partial file through a perfectly durable rename.
  status = SyncPath(tmp, /*directory=*/false);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (fault::ShouldFail(fault::kAtomicRename)) {
    // A simulated crash between flush and rename: the temp file stays
    // behind (as it would after a real crash) and the target is untouched.
    return Status::Internal("injected crash before rename of " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  // The rename itself lives in the directory; without this sync a crash can
  // roll the directory back to the pre-rename state even though the file's
  // data was synced. The renamed file is already in place, so on failure we
  // report the lost durability guarantee but leave the file alone.
  return SyncPath(ParentDirOf(path), /*directory=*/true);
}

Status SaveTensorBundle(const std::string& path,
                        const std::vector<NamedTensor>& bundle) {
  return AtomicWriteFile(path, [&bundle](std::ostream& os) {
    return WriteTensorBundle(os, bundle);
  });
}

StatusOr<std::vector<NamedTensor>> LoadTensorBundle(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open for reading: " + path);
  if (fault::ShouldFail(fault::kServeLoadRead)) {
    // Simulate a torn read (truncated download, partial page-in): parse a
    // half-length copy of the file. The bundle reader's bounds and CRC
    // validation must turn this into a recoverable Status, never a crash
    // or a garbage tensor.
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::istringstream torn(bytes);
    auto result = ReadTensorBundle(torn);
    if (result.ok()) {
      return Status::DataLoss("torn read of " + path +
                              " parsed cleanly (should be impossible)");
    }
    return Status::DataLoss("torn read of " + path + ": " +
                            result.status().ToString());
  }
  return ReadTensorBundle(is);
}

Status WriteVocabulary(std::ostream& os, const text::Vocabulary& vocab) {
  for (int64_t id = 0; id < vocab.size(); ++id) {
    os << vocab.WordOf(id) << '\t' << vocab.CountOf(id) << '\n';
  }
  if (!os) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<text::Vocabulary> ReadVocabulary(std::istream& is) {
  text::Vocabulary vocab;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("vocabulary line missing tab: " + line);
    }
    const std::string word = line.substr(0, tab);
    int64_t count = 0;
    try {
      count = std::stoll(line.substr(tab + 1));
    } catch (...) {
      return Status::InvalidArgument("bad count in line: " + line);
    }
    if (word.empty() || count <= 0) {
      return Status::InvalidArgument("bad vocabulary entry: " + line);
    }
    vocab.AddCount(word, count);
  }
  return vocab;
}

}  // namespace adamine::io
