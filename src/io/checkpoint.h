#ifndef ADAMINE_IO_CHECKPOINT_H_
#define ADAMINE_IO_CHECKPOINT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/batch_sampler.h"
#include "io/serialize.h"
#include "optim/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace adamine::io {

/// Writes every named parameter of `model` as a tensor bundle at `path`,
/// atomically (a crash mid-save leaves any previous file intact).
Status SaveModel(const std::string& path,
                 const core::CrossModalModel& model);

/// Loads a bundle written by SaveModel into `model`. Every parameter of the
/// model must be present with the exact name and shape (i.e. the model must
/// have been constructed with the same ModelConfig); extra entries in the
/// file are an error too, so silent architecture drift is caught.
Status LoadModel(const std::string& path, core::CrossModalModel& model);

/// The in-memory bundle form of a model's parameters (what SaveModel
/// writes), and its inverse: copy a bundle's values into a model after
/// validating names and shapes. Mutates nothing on error.
std::vector<NamedTensor> NamedParamsOf(const core::CrossModalModel& model);
Status ApplyNamedParams(const std::vector<NamedTensor>& bundle,
                        core::CrossModalModel& model);

/// Everything needed to continue an interrupted training run to the exact
/// result the uninterrupted run would have produced: model parameters,
/// optimizer moments, both RNG streams, the batch-sampler position, the
/// best-validation bookkeeping, and the per-epoch history so far. See
/// core::Trainer for the producer/consumer and DESIGN.md ("Crash safety &
/// resume") for the on-disk layout (magic "ADMC", versioned, CRC-32).
struct TrainingCheckpoint {
  /// First epoch the resumed run should execute.
  int64_t next_epoch = 0;
  /// Consecutive non-finite batches at the moment of the snapshot (the
  /// abort budget carries across the interruption).
  int64_t consecutive_nonfinite = 0;
  double best_val_medr = 0.0;
  bool has_best_snapshot = false;
  /// Best-validation parameter values, in model Params() order.
  std::vector<Tensor> best_snapshot;
  std::vector<NamedTensor> model_params;
  /// One slot per model parameter, in ParamVars() order.
  std::vector<optim::Adam::ParamState> adam_state;
  RngState trainer_rng;
  data::BatchSampler::State sampler;
  std::vector<core::EpochStats> history;
};

/// Stream-level (de)serialisation of a TrainingCheckpoint. Corrupt,
/// truncated, or wrong-version input yields a non-OK Status — never an
/// abort or a silently wrong checkpoint.
Status WriteTrainingCheckpoint(std::ostream& os,
                               const TrainingCheckpoint& checkpoint);
StatusOr<TrainingCheckpoint> ReadTrainingCheckpoint(std::istream& is);

/// File conveniences; Save goes through AtomicWriteFile, so the previous
/// checkpoint survives a crash at any write boundary of the new one.
Status SaveTrainingCheckpoint(const std::string& path,
                              const TrainingCheckpoint& checkpoint);
StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path);

}  // namespace adamine::io

#endif  // ADAMINE_IO_CHECKPOINT_H_
