#ifndef ADAMINE_IO_CHECKPOINT_H_
#define ADAMINE_IO_CHECKPOINT_H_

#include <string>

#include "core/model.h"
#include "util/status.h"

namespace adamine::io {

/// Writes every named parameter of `model` as a tensor bundle at `path`.
Status SaveModel(const std::string& path,
                 const core::CrossModalModel& model);

/// Loads a bundle written by SaveModel into `model`. Every parameter of the
/// model must be present with the exact name and shape (i.e. the model must
/// have been constructed with the same ModelConfig); extra entries in the
/// file are an error too, so silent architecture drift is caught.
Status LoadModel(const std::string& path, core::CrossModalModel& model);

}  // namespace adamine::io

#endif  // ADAMINE_IO_CHECKPOINT_H_
