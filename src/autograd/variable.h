#ifndef ADAMINE_AUTOGRAD_VARIABLE_H_
#define ADAMINE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace adamine::ag {

/// A node in the reverse-mode autodiff graph. Holds the forward value, the
/// (lazily allocated) gradient accumulator, the parent nodes this value was
/// computed from, and the closure that propagates `grad` into the parents.
struct Node {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's `grad` into `parents[*]->grad`. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// Allocates `grad` as zeros of `value`'s shape if not yet allocated.
  void EnsureGrad();
};

/// Handle to a Node. Vars are cheap to copy; two copies refer to the same
/// graph node. The autodiff graph is built by the free functions in ops.h
/// and torn down when the last Var referencing it goes out of scope.
class Var {
 public:
  /// Undefined variable (no node).
  Var() = default;

  /// Leaf variable wrapping `value`. If `requires_grad`, gradients will be
  /// accumulated into it during Backward (this is how parameters are made).
  explicit Var(Tensor value, bool requires_grad = false);

  /// Wraps an existing node.
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  /// Gradient accumulator; allocates zeros on first access.
  Tensor& grad() const;
  bool requires_grad() const;

  /// Clears the gradient (sets to zeros if allocated).
  void ZeroGrad() const;

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode differentiation seeding `root_grads[i]` at
/// `roots[i]` and accumulating into every reachable leaf with
/// requires_grad. Root gradients must match the root value shapes.
void Backward(const std::vector<Var>& roots,
              const std::vector<Tensor>& root_grads);

/// Convenience for a scalar loss: seeds gradient 1 at `root` (numel()==1).
void Backward(const Var& root);

}  // namespace adamine::ag

#endif  // ADAMINE_AUTOGRAD_VARIABLE_H_
