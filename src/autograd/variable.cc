#include "autograd/variable.h"

#include <unordered_set>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::ag {

void Node::EnsureGrad() {
  if (!grad.defined()) grad = Tensor(value.shape());
}

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  ADAMINE_CHECK(defined());
  return node_->value;
}

Tensor& Var::mutable_value() {
  ADAMINE_CHECK(defined());
  return node_->value;
}

Tensor& Var::grad() const {
  ADAMINE_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

bool Var::requires_grad() const {
  ADAMINE_CHECK(defined());
  return node_->requires_grad;
}

void Var::ZeroGrad() const {
  ADAMINE_CHECK(defined());
  if (node_->grad.defined()) node_->grad.Zero();
}

namespace {

/// Depth-first post-order over the graph reachable from `roots`, restricted
/// to nodes that require grad. Iterative to avoid stack overflow on long
/// LSTM chains.
void TopoSort(const std::vector<std::shared_ptr<Node>>& roots,
              std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  for (const auto& root : roots) {
    if (root == nullptr || !root->requires_grad) continue;
    if (visited.count(root.get())) continue;
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next_parent < top.node->parents.size()) {
        Node* parent = top.node->parents[top.next_parent++].get();
        if (parent != nullptr && parent->requires_grad &&
            !visited.count(parent)) {
          visited.insert(parent);
          stack.push_back({parent, 0});
        }
      } else {
        order.push_back(top.node);
        stack.pop_back();
      }
    }
  }
}

}  // namespace

void Backward(const std::vector<Var>& roots,
              const std::vector<Tensor>& root_grads) {
  ADAMINE_CHECK_EQ(roots.size(), root_grads.size());
  std::vector<std::shared_ptr<Node>> root_nodes;
  root_nodes.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    ADAMINE_CHECK(roots[i].defined());
    ADAMINE_CHECK(SameShape(roots[i].value(), root_grads[i]));
    Node* n = roots[i].node().get();
    if (!n->requires_grad) continue;  // Nothing reachable needs gradients.
    n->EnsureGrad();
    AddInPlace(n->grad, root_grads[i]);
    root_nodes.push_back(roots[i].node());
  }
  std::vector<Node*> order;
  TopoSort(root_nodes, order);
  // Post-order puts leaves first; propagate from the roots backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.defined()) n->backward_fn(*n);
  }
}

void Backward(const Var& root) {
  ADAMINE_CHECK(root.defined());
  ADAMINE_CHECK_EQ(root.value().numel(), 1);
  Tensor seed(root.value().shape());
  seed.Fill(1.0f);
  Backward({root}, {seed});
}

}  // namespace adamine::ag
