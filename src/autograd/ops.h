#ifndef ADAMINE_AUTOGRAD_OPS_H_
#define ADAMINE_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace adamine::ag {

// Differentiable graph-building counterparts of the tensor kernels. Each
// returns a new Var whose node records how to push gradients to its inputs.

/// Elementwise a + b.
Var Add(const Var& a, const Var& b);
/// Elementwise a - b.
Var Sub(const Var& a, const Var& b);
/// Elementwise a * b.
Var Mul(const Var& a, const Var& b);
/// a * s.
Var Scale(const Var& a, float s);
/// a + s (elementwise).
Var AddScalar(const Var& a, float s);
/// Matrix product A [M,K] * B [K,N].
Var MatMul(const Var& a, const Var& b);
/// Adds a length-C bias row to every row of the [N, C] input.
Var AddRowBroadcast(const Var& x, const Var& bias);
/// Elementwise nonlinearities.
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
/// Horizontal concatenation of two [N, *] matrices.
Var ConcatCols(const Var& a, const Var& b);
/// Columns [c0, c1) of a 2-D input.
Var SliceCols(const Var& a, int64_t c0, int64_t c1);
/// Multiplies row i of x by weights[i] (weights is a constant [N] tensor,
/// e.g. a sequence mask; no gradient flows into it).
Var ScaleRows(const Var& x, const Tensor& weights);
/// Stacks rows `indices[i]` of `table` into an [n, C] output. An index of -1
/// produces a zero row (padding). Backward scatter-adds into the table, so
/// this implements both embedding lookup and row regrouping.
Var Rows(const Var& table, const std::vector<int64_t>& indices);
/// Each row scaled to unit L2 norm.
Var L2NormalizeRows(const Var& x);
/// Mean softmax cross-entropy of logits [N, C] against integer labels;
/// label -1 means "ignore this row". Returns a scalar [1]. If every label is
/// -1 the result is 0 with zero gradient.
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int64_t>& labels);
/// Sum / mean of all elements -> scalar [1].
Var SumAllV(const Var& a);
Var MeanAllV(const Var& a);

}  // namespace adamine::ag

#endif  // ADAMINE_AUTOGRAD_OPS_H_
