#include "autograd/gradcheck.h"

#include <cmath>

#include "util/check.h"

namespace adamine::ag {

namespace {

/// Evaluates f at the given raw input tensors and returns the scalar value.
double Eval(const std::function<Var(const std::vector<Var>&)>& f,
            const std::vector<Tensor>& inputs) {
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) vars.emplace_back(t.Clone(), false);
  Var out = f(vars);
  ADAMINE_CHECK_EQ(out.value().numel(), 1);
  return out.value()[0];
}

}  // namespace

GradCheckResult GradCheck(
    const std::function<Var(const std::vector<Var>&)>& f,
    const std::vector<Tensor>& inputs, double eps, double tol) {
  // Analytic gradients.
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) vars.emplace_back(t.Clone(), true);
  Var out = f(vars);
  ADAMINE_CHECK_EQ(out.value().numel(), 1);
  Backward(out);

  GradCheckResult result;
  result.ok = true;
  for (size_t k = 0; k < inputs.size(); ++k) {
    const Tensor& analytic = vars[k].grad();
    const int64_t n = inputs[k].numel();
    for (int64_t i = 0; i < n; ++i) {
      std::vector<Tensor> plus;
      std::vector<Tensor> minus;
      for (const auto& t : inputs) {
        plus.push_back(t.Clone());
        minus.push_back(t.Clone());
      }
      plus[k][i] += static_cast<float>(eps);
      minus[k][i] -= static_cast<float>(eps);
      const double numeric =
          (Eval(f, plus) - Eval(f, minus)) / (2.0 * eps);
      const double err = std::fabs(numeric - analytic[i]);
      if (err > result.max_abs_err) {
        result.max_abs_err = err;
        result.worst_input = static_cast<int>(k);
        result.worst_elem = i;
      }
      if (err > tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace adamine::ag
