#ifndef ADAMINE_AUTOGRAD_GRADCHECK_H_
#define ADAMINE_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace adamine::ag {

/// Outcome of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = false;
  /// Largest absolute difference between analytic and numeric gradient.
  double max_abs_err = 0.0;
  /// Index of the worst input tensor / element, for debugging.
  int worst_input = -1;
  int64_t worst_elem = -1;
};

/// Verifies the analytic gradient of `f` against central finite differences.
///
/// `f` is called with leaf Vars wrapping copies of `inputs` (all with
/// requires_grad) and must return a scalar Var built from autograd ops. The
/// check perturbs every element of every input by +-eps.
///
/// Tolerance is absolute: |analytic - numeric| <= tol for every element.
/// float32 arithmetic makes ~1e-2 a reasonable default with eps ~ 1e-2.
GradCheckResult GradCheck(
    const std::function<Var(const std::vector<Var>&)>& f,
    const std::vector<Tensor>& inputs, double eps = 1e-2, double tol = 1e-2);

}  // namespace adamine::ag

#endif  // ADAMINE_AUTOGRAD_GRADCHECK_H_
