#include "autograd/ops.h"

#include <cmath>
#include <memory>
#include <utility>

#include "kernel/kernel.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::ag {

namespace {

/// Builds a result node from `value` with the given parents; wires
/// requires_grad as the OR of the parents' flags.
Var MakeResult(Tensor value, std::vector<std::shared_ptr<Node>> parents,
               std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p && p->requires_grad) node->requires_grad = true;
  }
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  return Var(node);
}

/// Accumulates `delta` into `target`'s grad if it participates in autodiff.
void Accumulate(const std::shared_ptr<Node>& target, const Tensor& delta) {
  if (!target->requires_grad) return;
  target->EnsureGrad();
  AddInPlace(target->grad, delta);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  Tensor out = adamine::Add(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeResult(std::move(out), {pa, pb}, [pa, pb](Node& n) {
    Accumulate(pa, n.grad);
    Accumulate(pb, n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = adamine::Sub(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeResult(std::move(out), {pa, pb}, [pa, pb](Node& n) {
    Accumulate(pa, n.grad);
    if (pb->requires_grad) {
      Tensor neg = adamine::Scale(n.grad, -1.0f);
      Accumulate(pb, neg);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = adamine::Mul(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeResult(std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) Accumulate(pa, adamine::Mul(n.grad, pb->value));
    if (pb->requires_grad) Accumulate(pb, adamine::Mul(n.grad, pa->value));
  });
}

Var Scale(const Var& a, float s) {
  Tensor out = adamine::Scale(a.value(), s);
  auto pa = a.node();
  return MakeResult(std::move(out), {pa}, [pa, s](Node& n) {
    if (pa->requires_grad) Accumulate(pa, adamine::Scale(n.grad, s));
  });
}

Var AddScalar(const Var& a, float s) {
  Tensor out = adamine::AddScalar(a.value(), s);
  auto pa = a.node();
  return MakeResult(std::move(out), {pa},
                    [pa](Node& n) { Accumulate(pa, n.grad); });
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = Gemm(a.value(), false, b.value(), false);
  auto pa = a.node();
  auto pb = b.node();
  return MakeResult(std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) {
      Tensor ga = Gemm(n.grad, false, pb->value, true);
      Accumulate(pa, ga);
    }
    if (pb->requires_grad) {
      Tensor gb = Gemm(pa->value, true, n.grad, false);
      Accumulate(pb, gb);
    }
  });
}

Var AddRowBroadcast(const Var& x, const Var& bias) {
  Tensor out = adamine::AddRowBroadcast(x.value(), bias.value());
  auto px = x.node();
  auto pb = bias.node();
  return MakeResult(std::move(out), {px, pb}, [px, pb](Node& n) {
    Accumulate(px, n.grad);
    if (pb->requires_grad) {
      Tensor gb = ColSum(n.grad);
      gb = gb.Reshape(pb->value.shape());
      Accumulate(pb, gb);
    }
  });
}

Var Tanh(const Var& a) {
  Tensor out = adamine::Tanh(a.value());
  auto pa = a.node();
  Tensor y = out;  // Alias: captured for the backward formula.
  return MakeResult(std::move(out), {pa}, [pa, y](Node& n) {
    if (!pa->requires_grad) return;
    // dx = g * (1 - y^2)
    Tensor d(y.shape());
    const float* gy = n.grad.data();
    const float* py = y.data();
    float* pd = d.data();
    const int64_t m = y.numel();
    for (int64_t i = 0; i < m; ++i) pd[i] = gy[i] * (1.0f - py[i] * py[i]);
    Accumulate(pa, d);
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = adamine::Sigmoid(a.value());
  auto pa = a.node();
  Tensor y = out;
  return MakeResult(std::move(out), {pa}, [pa, y](Node& n) {
    if (!pa->requires_grad) return;
    Tensor d(y.shape());
    const float* gy = n.grad.data();
    const float* py = y.data();
    float* pd = d.data();
    const int64_t m = y.numel();
    for (int64_t i = 0; i < m; ++i) pd[i] = gy[i] * py[i] * (1.0f - py[i]);
    Accumulate(pa, d);
  });
}

Var Relu(const Var& a) {
  Tensor out = adamine::Relu(a.value());
  auto pa = a.node();
  Tensor y = out;
  return MakeResult(std::move(out), {pa}, [pa, y](Node& n) {
    if (!pa->requires_grad) return;
    Tensor d(y.shape());
    const float* gy = n.grad.data();
    const float* py = y.data();
    float* pd = d.data();
    const int64_t m = y.numel();
    for (int64_t i = 0; i < m; ++i) pd[i] = py[i] > 0.0f ? gy[i] : 0.0f;
    Accumulate(pa, d);
  });
}

Var ConcatCols(const Var& a, const Var& b) {
  Tensor out = adamine::ConcatCols(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  const int64_t ca = a.value().cols();
  const int64_t cb = b.value().cols();
  return MakeResult(std::move(out), {pa, pb}, [pa, pb, ca, cb](Node& n) {
    if (pa->requires_grad) {
      Accumulate(pa, adamine::SliceCols(n.grad, 0, ca));
    }
    if (pb->requires_grad) {
      Accumulate(pb, adamine::SliceCols(n.grad, ca, ca + cb));
    }
  });
}

Var SliceCols(const Var& a, int64_t c0, int64_t c1) {
  Tensor out = adamine::SliceCols(a.value(), c0, c1);
  auto pa = a.node();
  return MakeResult(std::move(out), {pa}, [pa, c0, c1](Node& n) {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    const int64_t rows = n.grad.rows();
    const int64_t w = c1 - c0;
    const int64_t c = pa->value.cols();
    for (int64_t i = 0; i < rows; ++i) {
      const float* g = n.grad.data() + i * w;
      float* dst = pa->grad.data() + i * c + c0;
      for (int64_t j = 0; j < w; ++j) dst[j] += g[j];
    }
  });
}

Var ScaleRows(const Var& x, const Tensor& weights) {
  ADAMINE_CHECK_EQ(x.value().ndim(), 2);
  ADAMINE_CHECK_EQ(weights.numel(), x.value().rows());
  const int64_t rows = x.value().rows();
  const int64_t cols = x.value().cols();
  Tensor out = x.value().Clone();
  for (int64_t i = 0; i < rows; ++i) {
    float* row = out.data() + i * cols;
    const float w = weights[i];
    for (int64_t j = 0; j < cols; ++j) row[j] *= w;
  }
  auto px = x.node();
  Tensor w = weights;  // Alias capture.
  return MakeResult(std::move(out), {px}, [px, w, cols](Node& n) {
    if (!px->requires_grad) return;
    Tensor d = n.grad.Clone();
    const int64_t rows = d.rows();
    for (int64_t i = 0; i < rows; ++i) {
      float* row = d.data() + i * cols;
      const float wi = w[i];
      for (int64_t j = 0; j < cols; ++j) row[j] *= wi;
    }
    Accumulate(px, d);
  });
}

Var Rows(const Var& table, const std::vector<int64_t>& indices) {
  ADAMINE_CHECK_EQ(table.value().ndim(), 2);
  const int64_t c = table.value().cols();
  const int64_t v = table.value().rows();
  Tensor out({static_cast<int64_t>(indices.size()), c});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    if (r < 0) continue;  // Padding row stays zero.
    ADAMINE_CHECK_LT(r, v);
    const float* src = table.value().data() + r * c;
    std::copy(src, src + c, out.data() + static_cast<int64_t>(i) * c);
  }
  auto pt = table.node();
  std::vector<int64_t> idx = indices;
  return MakeResult(std::move(out), {pt}, [pt, idx, c](Node& n) {
    if (!pt->requires_grad) return;
    pt->EnsureGrad();
    // Embedding scatter through the kernel layer: column-sliced, so
    // duplicate ids accumulate in sequential order on every thread count.
    // Negative ids (padding) are skipped by the kernel.
    kernel::ScatterAddRows(pt->grad.data(), c, idx.data(),
                           static_cast<int64_t>(idx.size()), n.grad.data(), c,
                           c);
  });
}

Var L2NormalizeRows(const Var& x) {
  ADAMINE_CHECK_EQ(x.value().ndim(), 2);
  Tensor norms = RowNorms(x.value());
  Tensor out = adamine::L2NormalizeRows(x.value());
  auto px = x.node();
  Tensor y = out;
  return MakeResult(std::move(out), {px}, [px, y, norms](Node& n) {
    if (!px->requires_grad) return;
    // For row vectors: y = x / |x|; dx = (g - (g . y) y) / |x|.
    const int64_t rows = y.rows();
    const int64_t cols = y.cols();
    Tensor d({rows, cols});
    for (int64_t i = 0; i < rows; ++i) {
      const float* g = n.grad.data() + i * cols;
      const float* yr = y.data() + i * cols;
      float* dr = d.data() + i * cols;
      const float norm = norms[i];
      if (norm < 1e-12f) continue;  // Zero row: gradient undefined, use 0.
      double dot = 0.0;
      for (int64_t j = 0; j < cols; ++j) dot += double(g[j]) * yr[j];
      const float fd = static_cast<float>(dot);
      const float inv = 1.0f / norm;
      for (int64_t j = 0; j < cols; ++j) dr[j] = (g[j] - fd * yr[j]) * inv;
    }
    Accumulate(px, d);
  });
}

Var SoftmaxCrossEntropy(const Var& logits,
                        const std::vector<int64_t>& labels) {
  ADAMINE_CHECK_EQ(logits.value().ndim(), 2);
  ADAMINE_CHECK_EQ(static_cast<int64_t>(labels.size()),
                   logits.value().rows());
  const int64_t rows = logits.value().rows();
  const int64_t classes = logits.value().cols();
  Tensor probs = SoftmaxRows(logits.value());
  int64_t count = 0;
  double loss = 0.0;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t label = labels[i];
    if (label < 0) continue;
    ADAMINE_CHECK_LT(label, classes);
    ++count;
    loss -= std::log(std::max(1e-12f, probs.At(i, label)));
  }
  Tensor out({1});
  out[0] = count > 0 ? static_cast<float>(loss / count) : 0.0f;
  auto pl = logits.node();
  std::vector<int64_t> lab = labels;
  return MakeResult(
      std::move(out), {pl}, [pl, lab, probs, count](Node& n) {
        if (!pl->requires_grad || count == 0) return;
        const float scale = n.grad[0] / static_cast<float>(count);
        const int64_t rows = probs.rows();
        const int64_t classes = probs.cols();
        Tensor d({rows, classes});
        for (int64_t i = 0; i < rows; ++i) {
          const int64_t label = lab[i];
          if (label < 0) continue;
          const float* p = probs.data() + i * classes;
          float* dr = d.data() + i * classes;
          for (int64_t j = 0; j < classes; ++j) dr[j] = scale * p[j];
          dr[label] -= scale;
        }
        Accumulate(pl, d);
      });
}

Var SumAllV(const Var& a) {
  Tensor out({1});
  out[0] = SumAll(a.value());
  auto pa = a.node();
  return MakeResult(std::move(out), {pa}, [pa](Node& n) {
    if (!pa->requires_grad) return;
    Tensor d(pa->value.shape());
    d.Fill(n.grad[0]);
    Accumulate(pa, d);
  });
}

Var MeanAllV(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  Tensor out({1});
  out[0] = SumAll(a.value()) * inv;
  auto pa = a.node();
  return MakeResult(std::move(out), {pa}, [pa, inv](Node& n) {
    if (!pa->requires_grad) return;
    Tensor d(pa->value.shape());
    d.Fill(n.grad[0] * inv);
    Accumulate(pa, d);
  });
}

}  // namespace adamine::ag
