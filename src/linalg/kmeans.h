#ifndef ADAMINE_LINALG_KMEANS_H_
#define ADAMINE_LINALG_KMEANS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace adamine::linalg {

/// Lloyd's k-means with k-means++ seeding.
struct KMeansConfig {
  int64_t k = 8;
  int64_t max_iterations = 25;
  /// Stop when no assignment changes.
  uint64_t seed = 1;

  Status Validate() const;
};

struct KMeansResult {
  /// [k, D] cluster centres.
  Tensor centroids;
  /// Cluster id of every input row.
  std::vector<int64_t> assignments;
  /// Sum of squared distances of points to their centres.
  double inertia = 0.0;
  int64_t iterations = 0;
};

/// Clusters the rows of `points` [N, D]; requires k <= N.
StatusOr<KMeansResult> KMeans(const Tensor& points,
                              const KMeansConfig& config);

}  // namespace adamine::linalg

#endif  // ADAMINE_LINALG_KMEANS_H_
