#ifndef ADAMINE_LINALG_EIGEN_H_
#define ADAMINE_LINALG_EIGEN_H_

#include "tensor/tensor.h"

namespace adamine::linalg {

/// Eigendecomposition of a symmetric matrix.
struct EigenResult {
  /// Eigenvalues in descending order, [n].
  Tensor values;
  /// Corresponding eigenvectors as *columns*, [n, n].
  Tensor vectors;
};

/// Cyclic Jacobi eigendecomposition of symmetric `a` [n, n]. Converges to
/// machine precision for the small covariance matrices this library needs
/// (n up to a few hundred).
EigenResult SymmetricEigen(const Tensor& a, int max_sweeps = 64,
                           double tol = 1e-10);

/// Thin SVD of a general [m, n] matrix via the eigendecomposition of the
/// smaller Gram matrix: a = U diag(s) V^T with k = min(m, n) columns.
struct SvdResult {
  Tensor u;  // [m, k]
  Tensor s;  // [k], descending, non-negative
  Tensor v;  // [n, k]
};

SvdResult Svd(const Tensor& a);

/// Symmetric inverse square root (a + ridge I)^(-1/2); eigenvalues clamped
/// at `floor` before the inverse sqrt for numerical safety.
Tensor InverseSqrt(const Tensor& a, double ridge = 1e-6,
                   double floor = 1e-10);

/// Centers columns of `a` in place and returns the removed column means [C].
Tensor CenterColumns(Tensor& a);

/// PCA projection of rows of `a` [n, d] onto the top `k` principal
/// components -> [n, k]. Columns of `a` are centered internally.
Tensor PcaProject(const Tensor& a, int64_t k);

}  // namespace adamine::linalg

#endif  // ADAMINE_LINALG_EIGEN_H_
