#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::linalg {

EigenResult SymmetricEigen(const Tensor& a, int max_sweeps, double tol) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();

  // Work in double precision: covariance spectra span many decades.
  std::vector<double> m(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) m[static_cast<size_t>(i)] = a[i];
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i * n + i)] = 1.0;

  auto at = [&](std::vector<double>& mat, int64_t r, int64_t c) -> double& {
    return mat[static_cast<size_t>(r * n + c)];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += at(m, p, q) * at(m, p, q);
    }
    if (std::sqrt(off) < tol) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = at(m, p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = at(m, p, p);
        const double aqq = at(m, q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of m.
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = at(m, k, p);
          const double mkq = at(m, k, q);
          at(m, k, p) = c * mkp - s * mkq;
          at(m, k, q) = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = at(m, p, k);
          const double mqk = at(m, q, k);
          at(m, p, k) = c * mpk - s * mqk;
          at(m, q, k) = s * mpk + c * mqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = at(v, k, p);
          const double vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return at(m, x, x) > at(m, y, y);
  });

  EigenResult result;
  result.values = Tensor({n});
  result.vectors = Tensor({n, n});
  for (int64_t c = 0; c < n; ++c) {
    const int64_t src = order[static_cast<size_t>(c)];
    result.values[c] = static_cast<float>(at(m, src, src));
    for (int64_t r = 0; r < n; ++r) {
      result.vectors.At(r, c) = static_cast<float>(at(v, r, src));
    }
  }
  return result;
}

SvdResult Svd(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t mrows = a.rows();
  const int64_t ncols = a.cols();
  SvdResult out;
  if (mrows >= ncols) {
    // Eigen of A^T A gives V and s^2; U = A V / s.
    Tensor gram = Gemm(a, true, a, false);
    EigenResult eig = SymmetricEigen(gram);
    out.v = eig.vectors;  // [n, n]
    out.s = Tensor({ncols});
    for (int64_t i = 0; i < ncols; ++i) {
      out.s[i] = std::sqrt(std::max(0.0f, eig.values[i]));
    }
    Tensor av = Gemm(a, false, out.v, false);  // [m, n]
    out.u = Tensor({mrows, ncols});
    for (int64_t j = 0; j < ncols; ++j) {
      const float s = out.s[j];
      const float inv = s > 1e-12f ? 1.0f / s : 0.0f;
      for (int64_t i = 0; i < mrows; ++i) {
        out.u.At(i, j) = av.At(i, j) * inv;
      }
    }
  } else {
    // Mirror case via A A^T.
    Tensor gram = Gemm(a, false, a, true);
    EigenResult eig = SymmetricEigen(gram);
    out.u = eig.vectors;  // [m, m]
    out.s = Tensor({mrows});
    for (int64_t i = 0; i < mrows; ++i) {
      out.s[i] = std::sqrt(std::max(0.0f, eig.values[i]));
    }
    Tensor atu = Gemm(a, true, out.u, false);  // [n, m]
    out.v = Tensor({ncols, mrows});
    for (int64_t j = 0; j < mrows; ++j) {
      const float s = out.s[j];
      const float inv = s > 1e-12f ? 1.0f / s : 0.0f;
      for (int64_t i = 0; i < ncols; ++i) {
        out.v.At(i, j) = atu.At(i, j) * inv;
      }
    }
  }
  return out;
}

Tensor InverseSqrt(const Tensor& a, double ridge, double floor) {
  ADAMINE_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();
  Tensor ridged = a.Clone();
  for (int64_t i = 0; i < n; ++i) {
    ridged.At(i, i) += static_cast<float>(ridge);
  }
  EigenResult eig = SymmetricEigen(ridged);
  // V diag(1/sqrt(lambda)) V^T.
  Tensor scaled = eig.vectors.Clone();  // Columns scaled by 1/sqrt(lambda).
  for (int64_t c = 0; c < n; ++c) {
    const double lambda = std::max<double>(eig.values[c], floor);
    const float inv = static_cast<float>(1.0 / std::sqrt(lambda));
    for (int64_t r = 0; r < n; ++r) scaled.At(r, c) *= inv;
  }
  return Gemm(scaled, false, eig.vectors, true);
}

Tensor CenterColumns(Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  Tensor means = ColMean(a);
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  for (int64_t i = 0; i < n; ++i) {
    float* row = a.data() + i * c;
    for (int64_t j = 0; j < c; ++j) row[j] -= means[j];
  }
  return means;
}

Tensor PcaProject(const Tensor& a, int64_t k) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_LE(k, a.cols());
  Tensor centered = a.Clone();
  CenterColumns(centered);
  Tensor cov = Gemm(centered, true, centered, false);
  ScaleInPlace(cov, 1.0f / static_cast<float>(std::max<int64_t>(
                        1, a.rows() - 1)));
  EigenResult eig = SymmetricEigen(cov);
  Tensor top = SliceCols(eig.vectors, 0, k);
  return Gemm(centered, false, top, false);
}

}  // namespace adamine::linalg
