#include "linalg/kmeans.h"

#include <cmath>
#include <limits>

#include "kernel/kernel.h"
#include "util/check.h"
#include "util/rng.h"

namespace adamine::linalg {

namespace {

double SquaredDistance(const float* a, const float* b, int64_t d) {
  double acc = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double diff = double(a[j]) - b[j];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

Status KMeansConfig::Validate() const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  return Status::Ok();
}

StatusOr<KMeansResult> KMeans(const Tensor& points,
                              const KMeansConfig& config) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  if (points.ndim() != 2) {
    return Status::InvalidArgument("points must be 2-D");
  }
  const int64_t n = points.rows();
  const int64_t d = points.cols();
  if (config.k > n) {
    return Status::InvalidArgument("k exceeds the number of points");
  }

  Rng rng(config.seed);
  KMeansResult result;
  result.centroids = Tensor({config.k, d});
  result.assignments.assign(static_cast<size_t>(n), 0);

  // k-means++ seeding: first centre uniform, then proportional to the
  // squared distance to the nearest chosen centre.
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  int64_t first = rng.UniformInt(n);
  std::copy(points.data() + first * d, points.data() + (first + 1) * d,
            result.centroids.data());
  for (int64_t c = 1; c < config.k; ++c) {
    const float* last_centre = result.centroids.data() + (c - 1) * d;
    std::vector<double> weights(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)],
                   SquaredDistance(points.data() + i * d, last_centre, d));
      weights[static_cast<size_t>(i)] = min_dist[static_cast<size_t>(i)];
    }
    double total = 0.0;
    for (double w : weights) total += w;
    int64_t pick;
    if (total <= 0.0) {
      pick = rng.UniformInt(n);  // All points identical.
    } else {
      pick = rng.Categorical(weights);
    }
    std::copy(points.data() + pick * d, points.data() + (pick + 1) * d,
              result.centroids.data() + c * d);
  }

  // Lloyd iterations.
  std::vector<int64_t> counts(static_cast<size_t>(config.k));
  for (int64_t iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    // Assignment step on the kernel pool: each point's nearest centroid is
    // independent, assignments are disjoint writes, and the inertia is an
    // ordered reduction over fixed chunks — bit-stable in the thread count.
    struct AssignPartial {
      double inertia = 0.0;
      bool changed = false;
    };
    const AssignPartial assigned =
        kernel::ParallelReduceOrdered<AssignPartial>(
            n, /*grain=*/kernel::kRowGrain, AssignPartial{},
            [&](int64_t i0, int64_t i1) {
              AssignPartial partial;
              for (int64_t i = i0; i < i1; ++i) {
                const float* p = points.data() + i * d;
                double best = std::numeric_limits<double>::max();
                int64_t best_c = 0;
                for (int64_t c = 0; c < config.k; ++c) {
                  const double dist =
                      SquaredDistance(p, result.centroids.data() + c * d, d);
                  if (dist < best) {
                    best = dist;
                    best_c = c;
                  }
                }
                if (result.assignments[static_cast<size_t>(i)] != best_c) {
                  result.assignments[static_cast<size_t>(i)] = best_c;
                  partial.changed = true;
                }
                partial.inertia += best;
              }
              return partial;
            },
            [](AssignPartial acc, const AssignPartial& partial) {
              acc.inertia += partial.inertia;
              acc.changed = acc.changed || partial.changed;
              return acc;
            });
    const bool changed = assigned.changed;
    result.inertia = assigned.inertia;
    if (!changed && iter > 0) break;
    // Recompute centres; empty clusters keep their previous centre.
    Tensor sums({config.k, d});
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      const float* p = points.data() + i * d;
      float* s = sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) s[j] += p[j];
    }
    for (int64_t c = 0; c < config.k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      float* centre = result.centroids.data() + c * d;
      const float* s = sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) centre[j] = s[j] * inv;
    }
  }
  return result;
}

}  // namespace adamine::linalg
