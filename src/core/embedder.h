#ifndef ADAMINE_CORE_EMBEDDER_H_
#define ADAMINE_CORE_EMBEDDER_H_

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"

namespace adamine::core {

/// A dataset pushed through both branches of a model: aligned rows of unit
/// image / recipe embeddings plus the labels needed for evaluation.
struct EmbeddedDataset {
  Tensor image_emb;   // [N, latent_dim]
  Tensor recipe_emb;  // [N, latent_dim]
  std::vector<int64_t> labels;        // Visible labels (-1 = unlabeled).
  std::vector<int64_t> true_classes;  // Generator ground truth.
};

/// Embeds every pair of `recipes` in chunks (no gradients are recorded:
/// parameters are temporarily frozen for the forward passes).
EmbeddedDataset EmbedDataset(CrossModalModel& model,
                             const std::vector<data::EncodedRecipe>& recipes,
                             int64_t chunk_size = 256);

/// Brute-force cosine retrieval over a fixed set of unit-norm item rows.
class RetrievalIndex {
 public:
  /// `items` rows must be L2-normalised (model embeddings are).
  explicit RetrievalIndex(Tensor items);

  /// Indices of the `k` nearest items to the unit query row [D] by cosine
  /// similarity, most similar first (deterministic tie-break by index).
  std::vector<int64_t> Query(const Tensor& query, int64_t k) const;

  int64_t size() const { return items_.rows(); }

 private:
  Tensor items_;  // [N, D]
};

}  // namespace adamine::core

#endif  // ADAMINE_CORE_EMBEDDER_H_
