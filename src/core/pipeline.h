#ifndef ADAMINE_CORE_PIPELINE_H_
#define ADAMINE_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/embedder.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "kernel/kernel.h"
#include "nn/lm_pretrainer.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace adamine::core {

/// End-to-end experiment configuration: the synthetic dataset, the word2vec
/// pretraining, the model architecture, and the train/val/test split.
struct PipelineConfig {
  data::GeneratorConfig generator;
  text::Word2VecConfig word2vec;
  /// vocab_size, word_dim, image_dim and num_classes are filled in by the
  /// pipeline from the generated data.
  ModelConfig model;
  /// If set, the instruction encoder's word-level LSTM is pretrained as a
  /// next-token language model on the training instructions before being
  /// frozen (the substitute for the paper's skip-thought pretraining;
  /// default off so results match the published benches).
  bool pretrain_instruction_lm = false;
  nn::LmPretrainConfig lm;
  double train_fraction = 0.7;
  double val_fraction = 0.15;
  uint64_t split_seed = 31;
  /// Kernel execution layer settings (thread count) applied by Create before
  /// any compute runs. Thread count never changes results — every kernel is
  /// bit-deterministic in the pool width — only wall-clock time.
  kernel::KernelConfig kernel;

  Status Validate() const;
};

/// Owns one synthetic dataset plus everything derived from it (splits,
/// vocabulary, pretrained word vectors) and trains models on it. Every
/// bench and example builds on this harness; see DESIGN.md's experiment
/// index.
class Pipeline {
 public:
  static StatusOr<std::unique_ptr<Pipeline>> Create(
      const PipelineConfig& config);

  /// One trained scenario: the model, its training history, and the test
  /// set pushed through it.
  struct RunResult {
    std::unique_ptr<CrossModalModel> model;
    std::vector<EpochStats> history;
    EmbeddedDataset test_embeddings;
  };

  /// Trains a fresh model under `train_config`. `use_ingredients` /
  /// `use_instructions` select the text-structure ablations.
  ///
  /// Crash safety: set `train_config.checkpoint_dir` (plus
  /// `checkpoint_every_n_epochs`) to have the trainer write atomic
  /// training-state checkpoints, and `train_config.resume` to continue an
  /// interrupted run from the latest one. Because Run recreates the model
  /// and all RNG streams deterministically from the configs, a resumed run
  /// finishes with bit-identical weights to an uninterrupted one.
  StatusOr<RunResult> Run(const TrainConfig& train_config,
                          bool use_ingredients = true,
                          bool use_instructions = true);

  const PipelineConfig& config() const { return config_; }
  const data::RecipeGenerator& generator() const { return *generator_; }
  const data::DatasetSplits& splits() const { return splits_; }
  const text::Vocabulary& vocab() const { return vocab_; }
  const Tensor& word_embeddings() const { return word_embeddings_; }
  const std::vector<data::EncodedRecipe>& train_set() const { return train_; }
  const std::vector<data::EncodedRecipe>& val_set() const { return val_; }
  const std::vector<data::EncodedRecipe>& test_set() const { return test_; }

 private:
  Pipeline() = default;

  PipelineConfig config_;
  std::unique_ptr<data::RecipeGenerator> generator_;
  data::DatasetSplits splits_;
  text::Vocabulary vocab_;
  Tensor word_embeddings_;
  std::vector<data::EncodedRecipe> train_;
  std::vector<data::EncodedRecipe> val_;
  std::vector<data::EncodedRecipe> test_;
};

}  // namespace adamine::core

#endif  // ADAMINE_CORE_PIPELINE_H_
