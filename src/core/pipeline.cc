#include "core/pipeline.h"

#include <cmath>

#include "util/check.h"

namespace adamine::core {

Status PipelineConfig::Validate() const {
  if (!std::isfinite(train_fraction) || !std::isfinite(val_fraction)) {
    return Status::InvalidArgument("train/val fractions must be finite");
  }
  if (train_fraction <= 0.0 || val_fraction < 0.0 ||
      train_fraction + val_fraction >= 1.0) {
    return Status::InvalidArgument(
        "train/val fractions must be positive and leave room for test");
  }
  if (kernel.num_threads < 0) {
    return Status::InvalidArgument(
        "kernel.num_threads must be >= 0 (0 keeps the current width)");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Create(
    const PipelineConfig& config) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  kernel::Configure(config.kernel);
  auto generator = data::RecipeGenerator::Create(config.generator);
  if (!generator.ok()) return generator.status();

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->config_ = config;
  pipeline->generator_ =
      std::make_unique<data::RecipeGenerator>(std::move(generator.value()));

  data::Dataset dataset = pipeline->generator_->Generate();
  Rng split_rng(config.split_seed);
  pipeline->splits_ = data::Split(dataset, config.train_fraction,
                                  config.val_fraction, split_rng);

  // Vocabulary and word2vec pretraining are built on the *training* split
  // only (no test leakage through word statistics).
  pipeline->vocab_ = data::BuildVocabulary(pipeline->splits_.train);
  text::Word2VecConfig w2v_config = config.word2vec;
  w2v_config.dim = config.model.word_dim;
  auto w2v =
      text::Word2Vec::Create(pipeline->vocab_.size(), w2v_config);
  if (!w2v.ok()) return w2v.status();
  w2v->Train(
      data::BuildWord2VecCorpus(pipeline->splits_.train, pipeline->vocab_));
  pipeline->word_embeddings_ = w2v->embeddings().Clone();

  pipeline->train_ =
      data::EncodeDataset(pipeline->splits_.train, pipeline->vocab_);
  pipeline->val_ = data::EncodeDataset(pipeline->splits_.val, pipeline->vocab_);
  pipeline->test_ =
      data::EncodeDataset(pipeline->splits_.test, pipeline->vocab_);
  return pipeline;
}

StatusOr<Pipeline::RunResult> Pipeline::Run(const TrainConfig& train_config,
                                            bool use_ingredients,
                                            bool use_instructions) {
  ModelConfig model_config = config_.model;
  model_config.vocab_size = vocab_.size();
  model_config.image_dim = config_.generator.image_dim;
  model_config.num_classes = config_.generator.num_classes;
  model_config.use_ingredients = use_ingredients;
  model_config.use_instructions = use_instructions;

  auto model = CrossModalModel::Create(model_config, &word_embeddings_);
  if (!model.ok()) return model.status();

  RunResult result;
  result.model = std::move(model.value());
  if (config_.pretrain_instruction_lm && use_instructions) {
    // Skip-thought substitute: language-model pretraining of the word
    // level, then freeze it again (the model construction froze it; the
    // pretrainer needs it trainable).
    nn::HierarchicalEncoder& encoder =
        result.model->mutable_instruction_encoder();
    encoder.mutable_word_lstm().SetTrainable(true);
    std::vector<std::vector<int64_t>> sentences;
    for (const auto& r : train_) {
      for (const auto& s : r.instruction_sentences) sentences.push_back(s);
    }
    auto lm_loss = nn::PretrainLanguageModel(
        result.model->word_embedding_module(), encoder.mutable_word_lstm(),
        sentences, config_.lm);
    if (!lm_loss.ok()) return lm_loss.status();
    encoder.mutable_word_lstm().SetTrainable(false);
  }
  Trainer trainer(result.model.get(), train_config);
  auto history = trainer.Fit(train_, val_);
  if (!history.ok()) return history.status();
  result.history = std::move(history.value());
  result.test_embeddings = EmbedDataset(*result.model, test_);
  return result;
}

}  // namespace adamine::core
