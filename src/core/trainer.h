#ifndef ADAMINE_CORE_TRAINER_H_
#define ADAMINE_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "core/losses.h"
#include "core/model.h"
#include "data/dataset.h"
#include "kernel/kernel.h"
#include "util/status.h"

namespace adamine::core {

/// The training scenarios evaluated in the paper (§4.3). The text-structure
/// ablations (AdaMine_ingr / AdaMine_instr) are expressed through
/// ModelConfig::use_ingredients / use_instructions with scenario kAdaMine.
enum class Scenario {
  /// Full model: instance + semantic triplet losses, adaptive mining.
  kAdaMine,
  /// Instance loss only, adaptive mining.
  kAdaMineIns,
  /// Semantic loss only, adaptive mining.
  kAdaMineSem,
  /// Both losses, but classic gradient averaging instead of adaptive.
  kAdaMineAvg,
  /// Instance loss + classification head (the [33]-style regulariser).
  kAdaMineInsCls,
  /// Pairwise loss + classification head — our reimplementation of [33].
  kPwcStar,
  /// PWC* plus the positive margin of Eq. 6.
  kPwcPlusPlus,
  /// Extension (the paper's stated future work): AdaMine plus a second
  /// semantic triplet loss at the super-category level, structuring the
  /// latent space at three granularities (instance, class, category).
  kAdaMineHier,
};

/// Human-readable scenario name, matching the paper's tables.
std::string ScenarioName(Scenario scenario);

/// Training hyper-parameters (§4.4, scaled to the synthetic substrate).
struct TrainConfig {
  Scenario scenario = Scenario::kAdaMine;
  int64_t epochs = 20;
  int64_t batch_size = 100;
  double learning_rate = 1e-3;
  /// Triplet margin alpha (paper: 0.3).
  float margin = 0.3f;
  /// Semantic loss weight lambda (paper: 0.3).
  float lambda = 0.3f;
  /// Weight of the category-level semantic loss (kAdaMineHier only).
  float lambda_category = 0.1f;
  /// PWC++ margins (paper: 0.3 positive, 0.9 negative).
  float pos_margin = 0.3f;
  float neg_margin = 0.9f;
  /// Weight of the classification cross-entropy for *cls / PWC scenarios.
  double cls_weight = 0.1;
  /// Fraction of epochs with the image backbone frozen (paper: 20 of 80).
  double freeze_fraction = 0.25;
  /// Global gradient-norm clip; 0 disables.
  double clip_norm = 5.0;
  /// Select the final model by best validation MedR (paper's §4.4 scheme).
  bool select_best_on_val = true;
  int64_t val_bag_size = 500;
  int64_t val_num_bags = 3;
  uint64_t seed = 123;

  /// Crash safety. When `checkpoint_dir` is non-empty the trainer writes a
  /// full training-state checkpoint (atomically; see io::TrainingCheckpoint)
  /// every `checkpoint_every_n_epochs` epochs and after the final epoch.
  /// With `resume` set, a checkpoint found in `checkpoint_dir` is loaded
  /// first and training continues from it — to bit-identical final weights
  /// versus a run that was never interrupted.
  std::string checkpoint_dir;
  int64_t checkpoint_every_n_epochs = 1;
  bool resume = false;

  /// Abort the run with a descriptive error after this many *consecutive*
  /// batches whose loss or gradient norm is NaN/Inf. Each offending batch
  /// is skipped (no optimizer step) and counted in EpochStats.
  int64_t nonfinite_budget = 3;

  /// Kernel execution layer settings (thread count), applied by Fit before
  /// the first batch. Bit-deterministic: any width reproduces the
  /// single-threaded run exactly, so checkpoints/resume and the bench
  /// tables are unaffected by it.
  kernel::KernelConfig kernel;

  Status Validate() const;
};

/// Per-epoch training diagnostics.
struct EpochStats {
  int64_t epoch = 0;
  double instance_loss = 0.0;
  double semantic_loss = 0.0;
  double cls_loss = 0.0;
  /// Fraction of instance / semantic triplets that were informative — the
  /// quantity behind the adaptive-mining curriculum (Eq. 5).
  double active_fraction_ins = 0.0;
  double active_fraction_sem = 0.0;
  /// Validation MedR (mean of both directions); <0 if no validation ran.
  double val_medr = -1.0;
  double seconds = 0.0;
  /// Batches skipped by the non-finite guard (NaN/Inf loss or gradients).
  int64_t nonfinite_batches = 0;
};

/// Runs the §4.4 training loop for one scenario on one model.
class Trainer {
 public:
  Trainer(CrossModalModel* model, const TrainConfig& config);

  /// Trains on `train`; if `val` is non-empty and selection is enabled,
  /// tracks validation MedR per epoch and restores the best snapshot at the
  /// end. Returns per-epoch stats.
  StatusOr<std::vector<EpochStats>> Fit(
      const std::vector<data::EncodedRecipe>& train,
      const std::vector<data::EncodedRecipe>& val);

 private:
  CrossModalModel* model_;
  TrainConfig config_;
};

}  // namespace adamine::core

#endif  // ADAMINE_CORE_TRAINER_H_
