#ifndef ADAMINE_CORE_DOWNSTREAM_H_
#define ADAMINE_CORE_DOWNSTREAM_H_

#include <string>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"
#include "data/recipe.h"
#include "text/vocabulary.h"

namespace adamine::core {

/// Mean instruction-branch feature over `recipes` -> [1, sentence_hidden].
/// This is the paper's Table 4 trick: an ingredient-only query is completed
/// with "the average of the instruction embeddings over all the training
/// set" to stay in-distribution.
Tensor MeanInstructionFeature(CrossModalModel& model,
                              const std::vector<data::EncodedRecipe>& recipes,
                              int64_t chunk_size = 256);

/// Latent embedding [latent_dim] of an ingredient-word query: the
/// ingredient branch sees only `ingredient`, the instruction branch is fed
/// `mean_instruction_feature`. Requires both branches enabled.
Tensor EmbedIngredientQuery(CrossModalModel& model,
                            const text::Vocabulary& vocab,
                            const std::string& ingredient,
                            const Tensor& mean_instruction_feature);

/// The paper's Table 5 edit: returns a copy of `recipe` with `ingredient`
/// deleted from the ingredient list and every instruction sentence that
/// mentions it dropped.
data::Recipe RemoveIngredient(const data::Recipe& recipe,
                              const std::string& ingredient);

}  // namespace adamine::core

#endif  // ADAMINE_CORE_DOWNSTREAM_H_
