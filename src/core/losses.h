#ifndef ADAMINE_CORE_LOSSES_H_
#define ADAMINE_CORE_LOSSES_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace adamine::core {

/// How per-triplet gradients are aggregated into the batch update (§3.3).
enum class MiningStrategy {
  /// AdaMine (Eq. 4-5): normalise by the number of *informative* (non-zero
  /// loss) triplets, giving an automatic average-to-hard-negative
  /// curriculum.
  kAdaptive,
  /// The common baseline: average over all triplets, informative or not
  /// (the AdaMine_avg ablation).
  kAverage,
};

/// Result of a batch loss evaluated on L2-normalised embedding matrices.
/// Gradients are with respect to the (normalised) image / recipe embedding
/// rows and are already divided by the strategy's normaliser, so callers
/// seed them into the autograd graph unscaled.
struct BatchLossResult {
  /// Normalised loss value (sum over triplets / normaliser), for logging.
  double loss = 0.0;
  Tensor grad_image;   // [B, D]
  Tensor grad_recipe;  // [B, D]
  /// Number of triplets with non-zero loss.
  int64_t active_triplets = 0;
  /// Number of triplets considered.
  int64_t total_triplets = 0;
};

/// Bidirectional instance triplet loss (Eq. 2): for every image query the
/// positive is its matching recipe and the negatives are the other recipes
/// in the batch, and symmetrically for recipe queries. Cosine distance on
/// unit rows: d(x, y) = 1 - x.y.
BatchLossResult InstanceTripletLoss(const Tensor& image_emb,
                                    const Tensor& recipe_emb, float margin,
                                    MiningStrategy strategy);

/// Bidirectional semantic triplet loss (Eq. 3) over class labels
/// (`labels[i]` < 0 means unlabeled; such items are neither queries,
/// positives nor negatives). Following §4.4: the positive for a query is
/// ONE randomly drawn same-class item in the other modality (excluding the
/// matching pair), the negative set is every labeled different-class item
/// in the other modality, and all negative sets in the batch are capped to
/// the smallest negative-set size for fairness.
BatchLossResult SemanticTripletLoss(const Tensor& image_emb,
                                    const Tensor& recipe_emb,
                                    const std::vector<int64_t>& labels,
                                    float margin, MiningStrategy strategy,
                                    Rng& rng);

/// Pairwise loss of PWC / PWC++ (Eq. 6): positive pairs pay
/// [d(q,p) - pos_margin]_+ and negative pairs pay [neg_margin - d(q,n)]_+,
/// averaged over all pairs, both directions. PWC* is pos_margin = 0.
BatchLossResult PairwiseLoss(const Tensor& image_emb,
                             const Tensor& recipe_emb, float pos_margin,
                             float neg_margin);

}  // namespace adamine::core

#endif  // ADAMINE_CORE_LOSSES_H_
