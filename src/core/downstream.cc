#include "core/downstream.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::core {

Tensor MeanInstructionFeature(CrossModalModel& model,
                              const std::vector<data::EncodedRecipe>& recipes,
                              int64_t chunk_size) {
  ADAMINE_CHECK(!recipes.empty());
  const int64_t n = static_cast<int64_t>(recipes.size());
  Tensor sum({1, model.config().sentence_hidden});
  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t end = std::min(n, start + chunk_size);
    std::vector<const data::EncodedRecipe*> batch;
    for (int64_t i = start; i < end; ++i) {
      batch.push_back(&recipes[static_cast<size_t>(i)]);
    }
    Tensor features = model.InstructionFeatures(batch).value();
    Tensor col = ColSum(features);
    AddInPlace(sum, col.Reshape({1, sum.cols()}));
  }
  ScaleInPlace(sum, 1.0f / static_cast<float>(n));
  return sum;
}

Tensor EmbedIngredientQuery(CrossModalModel& model,
                            const text::Vocabulary& vocab,
                            const std::string& ingredient,
                            const Tensor& mean_instruction_feature) {
  ADAMINE_CHECK(model.config().use_ingredients);
  ADAMINE_CHECK(model.config().use_instructions);
  data::EncodedRecipe query;
  query.ingredient_tokens = {vocab.IdOf(ingredient)};
  ag::Var ingr = model.IngredientFeatures({&query});
  ag::Var instr(mean_instruction_feature.Clone(), /*requires_grad=*/false);
  Tensor emb = model.FuseTextFeatures(ingr, instr).value();
  return emb.Reshape({emb.numel()});
}

data::Recipe RemoveIngredient(const data::Recipe& recipe,
                              const std::string& ingredient) {
  data::Recipe out = recipe;
  out.ingredients.clear();
  out.ingredient_ids.clear();
  for (size_t i = 0; i < recipe.ingredients.size(); ++i) {
    if (recipe.ingredients[i] == ingredient) continue;
    out.ingredients.push_back(recipe.ingredients[i]);
    out.ingredient_ids.push_back(recipe.ingredient_ids[i]);
  }
  out.instructions.clear();
  for (const auto& sentence : recipe.instructions) {
    const bool mentions =
        std::find(sentence.begin(), sentence.end(), ingredient) !=
        sentence.end();
    if (!mentions) out.instructions.push_back(sentence);
  }
  return out;
}

}  // namespace adamine::core
