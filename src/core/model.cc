#include "core/model.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace adamine::core {

namespace {

/// Initial word table: the pretrained matrix if given, else random.
Tensor InitialWordTable(const ModelConfig& config, const Tensor* pretrained,
                        Rng& rng) {
  if (pretrained != nullptr) {
    ADAMINE_CHECK_EQ(pretrained->rows(), config.vocab_size);
    ADAMINE_CHECK_EQ(pretrained->cols(), config.word_dim);
    return pretrained->Clone();
  }
  return Tensor::Randn({config.vocab_size, config.word_dim}, rng, 0.1f);
}

}  // namespace

Status ModelConfig::Validate() const {
  if (vocab_size <= 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  for (int64_t d : {word_dim, ingredient_hidden, word_hidden, sentence_hidden,
                    image_dim, latent_dim}) {
    if (d <= 0) return Status::InvalidArgument("all dimensions must be > 0");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (!use_ingredients && !use_instructions) {
    return Status::InvalidArgument(
        "at least one of ingredients/instructions must be enabled");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<CrossModalModel>> CrossModalModel::Create(
    const ModelConfig& config, const Tensor* pretrained_word_embeddings) {
  ADAMINE_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<CrossModalModel>(
      new CrossModalModel(config, pretrained_word_embeddings));
}

CrossModalModel::CrossModalModel(const ModelConfig& config,
                                 const Tensor* pretrained_word_embeddings)
    : config_(config),
      init_rng_(config.seed),
      word_embeddings_(
          InitialWordTable(config, pretrained_word_embeddings, init_rng_)),
      ingredient_encoder_(config.word_dim, config.ingredient_hidden,
                          init_rng_),
      instruction_encoder_(config.word_dim, config.word_hidden,
                           config.sentence_hidden, init_rng_),
      recipe_fc_((config.use_ingredients ? 2 * config.ingredient_hidden : 0) +
                     (config.use_instructions ? config.sentence_hidden : 0),
                 config.latent_dim, init_rng_),
      image_backbone_(config.image_dim, config.image_dim, init_rng_),
      image_fc_(config.image_dim, config.latent_dim, init_rng_),
      classifier_(config.latent_dim, config.num_classes, init_rng_) {
  RegisterSubmodule("word_emb", &word_embeddings_);
  RegisterSubmodule("ingr", &ingredient_encoder_);
  RegisterSubmodule("instr", &instruction_encoder_);
  RegisterSubmodule("recipe_fc", &recipe_fc_);
  RegisterSubmodule("img_backbone", &image_backbone_);
  RegisterSubmodule("img_fc", &image_fc_);
  RegisterSubmodule("classifier", &classifier_);
  if (!config.train_word_embeddings) {
    word_embeddings_.SetTrainable(false);
  }
  // The word level of the instruction encoder stands in for the frozen
  // skip-thought pretrained level (§3.2.1).
  instruction_encoder_.FreezeWordLevel();
}

ag::Var CrossModalModel::EmbedImages(const Tensor& images) const {
  ADAMINE_CHECK_EQ(images.ndim(), 2);
  ADAMINE_CHECK_EQ(images.cols(), config_.image_dim);
  ag::Var x(images, /*requires_grad=*/false);
  ag::Var features = ag::Tanh(image_backbone_.Forward(x));
  return ag::L2NormalizeRows(image_fc_.Forward(features));
}

ag::Var CrossModalModel::EmbedRecipes(
    const std::vector<const data::EncodedRecipe*>& batch) const {
  ADAMINE_CHECK(!batch.empty());
  ag::Var ingredient_features;
  ag::Var instruction_features;
  if (config_.use_ingredients) {
    ingredient_features = IngredientFeatures(batch);
  }
  if (config_.use_instructions) {
    instruction_features = InstructionFeatures(batch);
  }
  return FuseTextFeatures(ingredient_features, instruction_features);
}

ag::Var CrossModalModel::IngredientFeatures(
    const std::vector<const data::EncodedRecipe*>& batch) const {
  ADAMINE_CHECK(config_.use_ingredients);
  std::vector<std::vector<int64_t>> ingredient_seqs;
  ingredient_seqs.reserve(batch.size());
  for (const auto* r : batch) ingredient_seqs.push_back(r->ingredient_tokens);
  return ingredient_encoder_.EncodeIds(word_embeddings_, ingredient_seqs);
}

ag::Var CrossModalModel::InstructionFeatures(
    const std::vector<const data::EncodedRecipe*>& batch) const {
  ADAMINE_CHECK(config_.use_instructions);
  std::vector<nn::HierarchicalEncoder::Document> docs;
  docs.reserve(batch.size());
  for (const auto* r : batch) docs.push_back(r->instruction_sentences);
  return instruction_encoder_.Encode(word_embeddings_, docs);
}

ag::Var CrossModalModel::FuseTextFeatures(
    const ag::Var& ingredient_features,
    const ag::Var& instruction_features) const {
  ag::Var text_features;
  if (config_.use_ingredients) {
    ADAMINE_CHECK(ingredient_features.defined());
    text_features = ingredient_features;
  }
  if (config_.use_instructions) {
    ADAMINE_CHECK(instruction_features.defined());
    text_features = text_features.defined()
                        ? ag::ConcatCols(text_features, instruction_features)
                        : instruction_features;
  }
  return ag::L2NormalizeRows(recipe_fc_.Forward(text_features));
}

ag::Var CrossModalModel::Classify(const ag::Var& latent_embeddings) const {
  return classifier_.Forward(latent_embeddings);
}

void CrossModalModel::SetImageBackboneTrainable(bool trainable) {
  image_backbone_.SetTrainable(trainable);
}

std::vector<Tensor> CrossModalModel::SnapshotParams() const {
  std::vector<Tensor> snapshot;
  for (const auto& p : Params()) snapshot.push_back(p.var.value().Clone());
  return snapshot;
}

void CrossModalModel::RestoreParams(const std::vector<Tensor>& snapshot) {
  auto params = Params();
  ADAMINE_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = params[i].var.node()->value;
    ADAMINE_CHECK(SameShape(value, snapshot[i]));
    std::copy(snapshot[i].data(), snapshot[i].data() + snapshot[i].numel(),
              value.data());
  }
}

}  // namespace adamine::core
