#include "core/embedder.h"

#include <algorithm>
#include <numeric>

#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::core {

namespace {

/// RAII: disables requires_grad on every parameter for the scope, so eval
/// forward passes skip all backward bookkeeping, then restores flags.
class FrozenScope {
 public:
  explicit FrozenScope(CrossModalModel& model) : model_(model) {
    for (const auto& p : model.Params()) {
      flags_.push_back(p.var.requires_grad());
      p.var.node()->requires_grad = false;
    }
  }
  ~FrozenScope() {
    auto params = model_.Params();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].var.node()->requires_grad = flags_[i];
    }
  }
  FrozenScope(const FrozenScope&) = delete;
  FrozenScope& operator=(const FrozenScope&) = delete;

 private:
  CrossModalModel& model_;
  std::vector<bool> flags_;
};

}  // namespace

EmbeddedDataset EmbedDataset(CrossModalModel& model,
                             const std::vector<data::EncodedRecipe>& recipes,
                             int64_t chunk_size) {
  ADAMINE_CHECK(!recipes.empty());
  ADAMINE_CHECK_GT(chunk_size, 0);
  FrozenScope frozen(model);

  const int64_t n = static_cast<int64_t>(recipes.size());
  const int64_t latent = model.config().latent_dim;
  const int64_t image_dim = model.config().image_dim;
  EmbeddedDataset out;
  out.image_emb = Tensor({n, latent});
  out.recipe_emb = Tensor({n, latent});
  out.labels.reserve(recipes.size());
  out.true_classes.reserve(recipes.size());
  for (const auto& r : recipes) {
    out.labels.push_back(r.label);
    out.true_classes.push_back(r.true_class);
  }

  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t end = std::min(n, start + chunk_size);
    const int64_t b = end - start;
    Tensor images({b, image_dim});
    std::vector<const data::EncodedRecipe*> batch;
    batch.reserve(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      const auto& r = recipes[static_cast<size_t>(start + i)];
      ADAMINE_CHECK_EQ(r.image.numel(), image_dim);
      std::copy(r.image.data(), r.image.data() + image_dim,
                images.data() + i * image_dim);
      batch.push_back(&r);
    }
    Tensor img_emb = model.EmbedImages(images).value();
    Tensor rec_emb = model.EmbedRecipes(batch).value();
    std::copy(img_emb.data(), img_emb.data() + img_emb.numel(),
              out.image_emb.data() + start * latent);
    std::copy(rec_emb.data(), rec_emb.data() + rec_emb.numel(),
              out.recipe_emb.data() + start * latent);
  }
  return out;
}

RetrievalIndex::RetrievalIndex(Tensor items) : items_(std::move(items)) {
  ADAMINE_CHECK_EQ(items_.ndim(), 2);
}

std::vector<int64_t> RetrievalIndex::Query(const Tensor& query,
                                           int64_t k) const {
  ADAMINE_CHECK_EQ(query.numel(), items_.cols());
  const int64_t n = items_.rows();
  const int64_t d = items_.cols();
  std::vector<float> sims(static_cast<size_t>(n));
  // Single float accumulation chain in ascending j — the per-element order
  // of kernel::Gemm — so this scalar reference path stays bit-identical to
  // the serving layer's batched GEMM scoring (this file is compiled with
  // -ffp-contract=off; see src/CMakeLists.txt).
  for (int64_t i = 0; i < n; ++i) {
    const float* row = items_.data() + i * d;
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) acc += row[j] * query[j];
    sims[static_cast<size_t>(i)] = acc;
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const int64_t take = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](int64_t a, int64_t b) {
                      const float sa = sims[static_cast<size_t>(a)];
                      const float sb = sims[static_cast<size_t>(b)];
                      return sa > sb || (sa == sb && a < b);
                    });
  order.resize(static_cast<size_t>(take));
  return order;
}

}  // namespace adamine::core
