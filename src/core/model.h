#ifndef ADAMINE_CORE_MODEL_H_
#define ADAMINE_CORE_MODEL_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/embedding.h"
#include "nn/hierarchical_encoder.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "util/status.h"

namespace adamine::core {

/// Architecture hyper-parameters of the dual network (§3.2.1, scaled to the
/// synthetic substrate).
struct ModelConfig {
  int64_t vocab_size = 0;
  /// Word embedding dimension (word2vec output).
  int64_t word_dim = 24;
  /// Hidden size of the ingredient BiLSTM (output is 2x this).
  int64_t ingredient_hidden = 24;
  /// Hidden sizes of the hierarchical instruction encoder.
  int64_t word_hidden = 24;
  int64_t sentence_hidden = 32;
  /// Dimension of the incoming image feature vectors.
  int64_t image_dim = 48;
  /// Dimension of the shared latent space F.
  int64_t latent_dim = 32;
  /// Number of classes for the (optional) classification head.
  int64_t num_classes = 32;
  /// Text-structure ablations (AdaMine_ingr / AdaMine_instr use one only).
  bool use_ingredients = true;
  bool use_instructions = true;
  /// Whether the word embedding table is fine-tuned. The paper keeps
  /// pretrained word vectors fixed.
  bool train_word_embeddings = false;
  uint64_t seed = 1;

  Status Validate() const;
};

/// The dual deep network of Figure 2: an image branch (fine-tunable
/// backbone adapter + FC, standing in for ResNet-50 + FC) and a recipe
/// branch (ingredient BiLSTM ++ hierarchical instruction LSTM, concatenated
/// into an FC), both mapping into a shared L2-normalised latent space where
/// cosine distance compares modalities.
class CrossModalModel : public nn::Module {
 public:
  /// `pretrained_word_embeddings`, if non-null, initialises the word table
  /// (shape [vocab_size, word_dim], e.g. word2vec output); otherwise the
  /// table is randomly initialised.
  static StatusOr<std::unique_ptr<CrossModalModel>> Create(
      const ModelConfig& config,
      const Tensor* pretrained_word_embeddings = nullptr);

  /// Embeds image feature rows [B, image_dim] -> unit rows [B, latent_dim].
  ag::Var EmbedImages(const Tensor& images) const;

  /// Embeds encoded recipes -> unit rows [B, latent_dim].
  ag::Var EmbedRecipes(
      const std::vector<const data::EncodedRecipe*>& batch) const;

  /// Ingredient-branch features [B, 2 * ingredient_hidden]. Requires
  /// use_ingredients.
  ag::Var IngredientFeatures(
      const std::vector<const data::EncodedRecipe*>& batch) const;

  /// Instruction-branch features [B, sentence_hidden]. Requires
  /// use_instructions.
  ag::Var InstructionFeatures(
      const std::vector<const data::EncodedRecipe*>& batch) const;

  /// Fuses branch features (concatenation per the enabled branches,
  /// FC, L2-normalise) into latent rows. Pass an undefined Var for a
  /// disabled branch. This is the hook the paper's "ingredient query with
  /// the training-mean instruction embedding" protocol (Table 4) needs.
  ag::Var FuseTextFeatures(const ag::Var& ingredient_features,
                           const ag::Var& instruction_features) const;

  /// Shared classification head: latent embeddings -> class logits
  /// [B, num_classes]. Used only by the ins+cls / PWC variants.
  ag::Var Classify(const ag::Var& latent_embeddings) const;

  /// Freezes / unfreezes the image backbone adapter, reproducing the
  /// paper's schedule (ResNet frozen for the first epochs, then
  /// fine-tuned). The FC heads stay trainable throughout.
  void SetImageBackboneTrainable(bool trainable);

  /// Mutable access to the instruction encoder, used to pretrain its word
  /// level as a language model before training (the skip-thought
  /// substitute; see Pipeline).
  nn::HierarchicalEncoder& mutable_instruction_encoder() {
    return instruction_encoder_;
  }

  /// The (frozen) word embedding table module.
  const nn::Embedding& word_embedding_module() const {
    return word_embeddings_;
  }

  /// Deep-copies all parameter values (for validation-MedR model
  /// selection).
  std::vector<Tensor> SnapshotParams() const;

  /// Restores parameter values from a snapshot taken on this model.
  void RestoreParams(const std::vector<Tensor>& snapshot);

  const ModelConfig& config() const { return config_; }

 private:
  CrossModalModel(const ModelConfig& config,
                  const Tensor* pretrained_word_embeddings);

  ModelConfig config_;
  Rng init_rng_;
  nn::Embedding word_embeddings_;
  nn::BiLstm ingredient_encoder_;
  nn::HierarchicalEncoder instruction_encoder_;
  nn::Linear recipe_fc_;
  nn::Linear image_backbone_;
  nn::Linear image_fc_;
  nn::Linear classifier_;
};

}  // namespace adamine::core

#endif  // ADAMINE_CORE_MODEL_H_
