#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include "autograd/ops.h"
#include "core/embedder.h"
#include "data/batch_sampler.h"
#include "eval/metrics.h"
#include "io/checkpoint.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace adamine::core {

std::string ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kAdaMine:
      return "AdaMine";
    case Scenario::kAdaMineIns:
      return "AdaMine_ins";
    case Scenario::kAdaMineSem:
      return "AdaMine_sem";
    case Scenario::kAdaMineAvg:
      return "AdaMine_avg";
    case Scenario::kAdaMineInsCls:
      return "AdaMine_ins+cls";
    case Scenario::kPwcStar:
      return "PWC*";
    case Scenario::kPwcPlusPlus:
      return "PWC++";
    case Scenario::kAdaMineHier:
      return "AdaMine_hier";
  }
  return "unknown";
}

Status TrainConfig::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (batch_size < 2) {
    return Status::InvalidArgument("batch_size must be at least 2");
  }
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (margin <= 0.0f) {
    return Status::InvalidArgument("margin must be positive");
  }
  if (lambda < 0.0f || lambda_category < 0.0f) {
    return Status::InvalidArgument("lambda weights must be non-negative");
  }
  if (pos_margin < 0.0f || neg_margin <= pos_margin) {
    return Status::InvalidArgument(
        "need 0 <= pos_margin < neg_margin for the pairwise losses");
  }
  if (cls_weight < 0.0) {
    return Status::InvalidArgument("cls_weight must be non-negative");
  }
  if (freeze_fraction < 0.0 || freeze_fraction >= 1.0) {
    return Status::InvalidArgument("freeze_fraction must be in [0, 1)");
  }
  if (clip_norm < 0.0) {
    return Status::InvalidArgument("clip_norm must be non-negative");
  }
  if (val_bag_size <= 1 || val_num_bags <= 0) {
    return Status::InvalidArgument("invalid validation bag settings");
  }
  if (checkpoint_every_n_epochs <= 0) {
    return Status::InvalidArgument(
        "checkpoint_every_n_epochs must be positive");
  }
  if (resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint_dir");
  }
  if (nonfinite_budget <= 0) {
    return Status::InvalidArgument("nonfinite_budget must be positive");
  }
  if (kernel.num_threads < 0) {
    return Status::InvalidArgument(
        "kernel.num_threads must be >= 0 (0 keeps the current width)");
  }
  return Status::Ok();
}

Trainer::Trainer(CrossModalModel* model, const TrainConfig& config)
    : model_(model), config_(config) {
  ADAMINE_CHECK(model != nullptr);
}

StatusOr<std::vector<EpochStats>> Trainer::Fit(
    const std::vector<data::EncodedRecipe>& train,
    const std::vector<data::EncodedRecipe>& val) {
  ADAMINE_RETURN_IF_ERROR(config_.Validate());
  if (train.empty()) return Status::InvalidArgument("empty training set");
  kernel::Configure(config_.kernel);

  const Scenario scenario = config_.scenario;
  const bool uses_instance = scenario != Scenario::kAdaMineSem &&
                             scenario != Scenario::kPwcStar &&
                             scenario != Scenario::kPwcPlusPlus;
  const bool uses_semantic = scenario == Scenario::kAdaMine ||
                             scenario == Scenario::kAdaMineAvg ||
                             scenario == Scenario::kAdaMineHier;
  const bool uses_category = scenario == Scenario::kAdaMineHier;
  const bool uses_pairwise = scenario == Scenario::kPwcStar ||
                             scenario == Scenario::kPwcPlusPlus;
  const bool uses_cls = scenario == Scenario::kAdaMineInsCls ||
                        scenario == Scenario::kPwcStar ||
                        scenario == Scenario::kPwcPlusPlus;
  const MiningStrategy strategy = scenario == Scenario::kAdaMineAvg
                                      ? MiningStrategy::kAverage
                                      : MiningStrategy::kAdaptive;
  const float pair_pos_margin =
      scenario == Scenario::kPwcPlusPlus ? config_.pos_margin : 0.0f;

  std::vector<int64_t> labels;
  labels.reserve(train.size());
  for (const auto& r : train) labels.push_back(r.label);
  data::BatchSampler sampler(labels, config_.batch_size, config_.seed);

  optim::Adam adam(config_.learning_rate);
  Rng rng(config_.seed ^ 0xABCDEF12ULL);
  const int64_t image_dim = model_->config().image_dim;

  const int64_t freeze_epochs =
      static_cast<int64_t>(config_.freeze_fraction * config_.epochs);
  const bool do_validation = config_.select_best_on_val && !val.empty();
  double best_val_medr = 0.0;
  std::vector<Tensor> best_snapshot;

  std::vector<EpochStats> history;
  int64_t start_epoch = 0;
  int64_t consecutive_nonfinite = 0;
  const std::string ckpt_path =
      config_.checkpoint_dir.empty()
          ? std::string()
          : config_.checkpoint_dir + "/train_state.admc";

  if (config_.resume && !ckpt_path.empty() &&
      std::filesystem::exists(ckpt_path)) {
    auto ckpt = io::LoadTrainingCheckpoint(ckpt_path);
    if (!ckpt.ok()) return ckpt.status();
    if (ckpt->next_epoch > config_.epochs) {
      return Status::InvalidArgument(
          "checkpoint is at epoch " + std::to_string(ckpt->next_epoch) +
          " but only " + std::to_string(config_.epochs) +
          " epochs are configured");
    }
    ADAMINE_RETURN_IF_ERROR(
        io::ApplyNamedParams(ckpt->model_params, *model_));
    ADAMINE_RETURN_IF_ERROR(
        adam.ImportState(model_->ParamVars(), ckpt->adam_state));
    rng.SetState(ckpt->trainer_rng);
    ADAMINE_RETURN_IF_ERROR(sampler.SetState(ckpt->sampler));
    if (ckpt->has_best_snapshot) {
      auto params = model_->Params();
      if (ckpt->best_snapshot.size() != params.size()) {
        return Status::InvalidArgument(
            "checkpoint best-snapshot size does not match the model");
      }
      for (size_t i = 0; i < params.size(); ++i) {
        if (!SameShape(ckpt->best_snapshot[i], params[i].var.value())) {
          return Status::InvalidArgument(
              "checkpoint best-snapshot shape mismatch");
        }
      }
      best_snapshot = std::move(ckpt->best_snapshot);
      best_val_medr = ckpt->best_val_medr;
    }
    history = std::move(ckpt->history);
    start_epoch = ckpt->next_epoch;
    consecutive_nonfinite = ckpt->consecutive_nonfinite;
  }

  for (int64_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    Stopwatch watch;
    model_->SetImageBackboneTrainable(epoch >= freeze_epochs);

    EpochStats stats;
    stats.epoch = epoch;
    double ins_total = 0, ins_active = 0, sem_total = 0, sem_active = 0;
    const int64_t batches = sampler.BatchesPerEpoch();
    for (int64_t step = 0; step < batches; ++step) {
      const std::vector<int64_t> batch_idx = sampler.NextBatch();
      const int64_t b = static_cast<int64_t>(batch_idx.size());
      if (b < 2) continue;

      // Assemble batch inputs.
      Tensor images({b, image_dim});
      std::vector<const data::EncodedRecipe*> batch;
      std::vector<int64_t> batch_labels;
      std::vector<int64_t> batch_categories;
      batch.reserve(static_cast<size_t>(b));
      for (int64_t i = 0; i < b; ++i) {
        const auto& r = train[static_cast<size_t>(batch_idx[i])];
        std::copy(r.image.data(), r.image.data() + image_dim,
                  images.data() + i * image_dim);
        batch.push_back(&r);
        batch_labels.push_back(r.label);
        batch_categories.push_back(r.category_label);
      }

      model_->ZeroGrad();
      ag::Var img_emb = model_->EmbedImages(images);
      ag::Var rec_emb = model_->EmbedRecipes(batch);

      // Accumulate analytic gradients at the embedding matrices. Loss and
      // triplet statistics go into batch-local accumulators first and only
      // merge into the epoch stats once the batch passes the non-finite
      // guard below, so a poisoned batch never contaminates the epoch.
      Tensor grad_img(img_emb.value().shape());
      Tensor grad_rec(rec_emb.value().shape());
      double batch_ins_loss = 0.0, batch_sem_loss = 0.0, batch_cls_loss = 0.0;
      double batch_ins_total = 0.0, batch_ins_active = 0.0;
      double batch_sem_total = 0.0, batch_sem_active = 0.0;

      if (uses_instance) {
        BatchLossResult ins = InstanceTripletLoss(
            img_emb.value(), rec_emb.value(), config_.margin, strategy);
        AddInPlace(grad_img, ins.grad_image);
        AddInPlace(grad_rec, ins.grad_recipe);
        batch_ins_loss += ins.loss;
        batch_ins_total += static_cast<double>(ins.total_triplets);
        batch_ins_active += static_cast<double>(ins.active_triplets);
      }
      if (uses_semantic || scenario == Scenario::kAdaMineSem) {
        BatchLossResult sem =
            SemanticTripletLoss(img_emb.value(), rec_emb.value(),
                                batch_labels, config_.margin, strategy, rng);
        const float weight =
            scenario == Scenario::kAdaMineSem ? 1.0f : config_.lambda;
        AxpyInPlace(grad_img, weight, sem.grad_image);
        AxpyInPlace(grad_rec, weight, sem.grad_recipe);
        batch_sem_loss += sem.loss;
        batch_sem_total += static_cast<double>(sem.total_triplets);
        batch_sem_active += static_cast<double>(sem.active_triplets);
      }
      if (uses_category) {
        BatchLossResult cat = SemanticTripletLoss(
            img_emb.value(), rec_emb.value(), batch_categories,
            config_.margin, strategy, rng);
        AxpyInPlace(grad_img, config_.lambda_category, cat.grad_image);
        AxpyInPlace(grad_rec, config_.lambda_category, cat.grad_recipe);
      }
      if (uses_pairwise) {
        BatchLossResult pw =
            PairwiseLoss(img_emb.value(), rec_emb.value(), pair_pos_margin,
                         config_.neg_margin);
        AddInPlace(grad_img, pw.grad_image);
        AddInPlace(grad_rec, pw.grad_recipe);
        batch_ins_loss += pw.loss;
        batch_ins_total += static_cast<double>(pw.total_triplets);
        batch_ins_active += static_cast<double>(pw.active_triplets);
      }

      std::vector<ag::Var> roots = {img_emb, rec_emb};
      std::vector<Tensor> root_grads = {grad_img, grad_rec};
      if (uses_cls) {
        ag::Var ce_img =
            ag::SoftmaxCrossEntropy(model_->Classify(img_emb), batch_labels);
        ag::Var ce_rec =
            ag::SoftmaxCrossEntropy(model_->Classify(rec_emb), batch_labels);
        Tensor w({1});
        w[0] = static_cast<float>(config_.cls_weight);
        roots.push_back(ce_img);
        root_grads.push_back(w);
        roots.push_back(ce_rec);
        root_grads.push_back(w.Clone());
        batch_cls_loss += ce_img.value()[0] + ce_rec.value()[0];
      }

      if (fault::ShouldFail(fault::kTrainerNonfiniteLoss)) {
        batch_ins_loss = std::numeric_limits<double>::quiet_NaN();
      }

      ag::Backward(roots, root_grads);
      auto params = model_->ParamVars();
      const double grad_norm =
          config_.clip_norm > 0.0
              ? nn::ClipGradNorm(params, config_.clip_norm)
              : nn::GlobalGradNorm(params);

      // Non-finite guard: a single NaN/Inf batch must not poison the model.
      // Skip the update, count it, and give up once `nonfinite_budget`
      // batches in a row are bad (a systemically diverged run).
      if (!std::isfinite(batch_ins_loss) || !std::isfinite(batch_sem_loss) ||
          !std::isfinite(batch_cls_loss) || !std::isfinite(grad_norm)) {
        ++stats.nonfinite_batches;
        if (++consecutive_nonfinite >= config_.nonfinite_budget) {
          return Status::FailedPrecondition(
              "aborting training: " +
              std::to_string(consecutive_nonfinite) +
              " consecutive batches with non-finite loss or gradients "
              "(epoch " +
              std::to_string(epoch) + ", step " + std::to_string(step) +
              "); last losses ins=" + std::to_string(batch_ins_loss) +
              " sem=" + std::to_string(batch_sem_loss) +
              " cls=" + std::to_string(batch_cls_loss) +
              " |grad|=" + std::to_string(grad_norm));
        }
        continue;
      }
      consecutive_nonfinite = 0;

      adam.Step(params);
      stats.instance_loss += batch_ins_loss;
      stats.semantic_loss += batch_sem_loss;
      stats.cls_loss += batch_cls_loss;
      ins_total += batch_ins_total;
      ins_active += batch_ins_active;
      sem_total += batch_sem_total;
      sem_active += batch_sem_active;
    }

    stats.instance_loss /= static_cast<double>(batches);
    stats.semantic_loss /= static_cast<double>(batches);
    stats.cls_loss /= static_cast<double>(batches);
    stats.active_fraction_ins = ins_total > 0 ? ins_active / ins_total : 0.0;
    stats.active_fraction_sem = sem_total > 0 ? sem_active / sem_total : 0.0;

    if (do_validation) {
      EmbeddedDataset emb = EmbedDataset(*model_, val);
      Rng val_rng(config_.seed ^ 0x77777777ULL);  // Same bags every epoch.
      eval::CrossModalResult result =
          eval::EvaluateBags(emb.image_emb, emb.recipe_emb,
                             config_.val_bag_size, config_.val_num_bags,
                             val_rng);
      stats.val_medr = 0.5 * (result.image_to_recipe.medr.mean +
                              result.recipe_to_image.medr.mean);
      if (best_snapshot.empty() || stats.val_medr < best_val_medr) {
        best_val_medr = stats.val_medr;
        best_snapshot = model_->SnapshotParams();
      }
    }
    stats.seconds = watch.ElapsedSeconds();
    history.push_back(stats);

    const bool checkpoint_now =
        !ckpt_path.empty() &&
        ((epoch + 1) % config_.checkpoint_every_n_epochs == 0 ||
         epoch + 1 == config_.epochs);
    if (checkpoint_now) {
      std::error_code ec;
      std::filesystem::create_directories(config_.checkpoint_dir, ec);
      io::TrainingCheckpoint ckpt;
      ckpt.next_epoch = epoch + 1;
      ckpt.consecutive_nonfinite = consecutive_nonfinite;
      ckpt.best_val_medr = best_val_medr;
      ckpt.has_best_snapshot = !best_snapshot.empty();
      ckpt.best_snapshot = best_snapshot;
      ckpt.model_params = io::NamedParamsOf(*model_);
      ckpt.adam_state = adam.ExportState(model_->ParamVars());
      ckpt.trainer_rng = rng.GetState();
      ckpt.sampler = sampler.GetState();
      ckpt.history = history;
      ADAMINE_RETURN_IF_ERROR(io::SaveTrainingCheckpoint(ckpt_path, ckpt));
      if (fault::ShouldFail(fault::kTrainerCrashAfterCheckpoint)) {
        return Status::Internal("injected crash after checkpoint at epoch " +
                                std::to_string(epoch));
      }
    }
  }

  if (do_validation && !best_snapshot.empty()) {
    model_->RestoreParams(best_snapshot);
  }
  return history;
}

}  // namespace adamine::core
