#include "core/losses.h"

#include <algorithm>

#include "kernel/kernel.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::core {

namespace {

/// Queries processed per chunk when the mining loops run on the kernel
/// pool. Fixed (thread-count independent) so the per-chunk partial
/// gradients, and therefore their ordered combination, never change with
/// the pool width.
constexpr int64_t kQueryGrain = 16;

/// Adds `scale` * row `src_row` of `src` into row `dst_row` of `dst`.
void AddRow(Tensor& dst, int64_t dst_row, const Tensor& src, int64_t src_row,
            float scale) {
  const int64_t d = dst.cols();
  float* out = dst.data() + dst_row * d;
  const float* in = src.data() + src_row * d;
  for (int64_t k = 0; k < d; ++k) out[k] += scale * in[k];
}

/// Per-chunk accumulator for the parallel mining loops. Chunks touch
/// overlapping gradient rows (a negative can belong to many queries), so
/// each chunk mines into its own partial and the partials merge afterwards
/// in ascending chunk order.
struct MiningPartial {
  float loss = 0.0f;
  int64_t total_triplets = 0;
  int64_t active_triplets = 0;
  Tensor grad_image;
  Tensor grad_recipe;
};

/// Runs `mine(q, partial)` for q in [0, num_queries) across the kernel pool
/// and merges the per-chunk partials into `result` in chunk order.
template <typename Mine>
void MineQueries(int64_t num_queries, const Tensor& image_emb,
                 const Tensor& recipe_emb, BatchLossResult& result,
                 const Mine& mine) {
  const int64_t chunks = kernel::NumChunks(num_queries, kQueryGrain);
  if (chunks <= 1) {
    MiningPartial partial;
    partial.grad_image = result.grad_image;    // Aliases: mine in place.
    partial.grad_recipe = result.grad_recipe;
    for (int64_t q = 0; q < num_queries; ++q) mine(q, partial);
    result.loss += partial.loss;
    result.total_triplets += partial.total_triplets;
    result.active_triplets += partial.active_triplets;
    return;
  }
  std::vector<MiningPartial> partials(static_cast<size_t>(chunks));
  kernel::ParallelForChunks(
      num_queries, kQueryGrain, [&](int64_t c, int64_t begin, int64_t end) {
        MiningPartial& partial = partials[static_cast<size_t>(c)];
        partial.grad_image = Tensor(image_emb.shape());
        partial.grad_recipe = Tensor(recipe_emb.shape());
        for (int64_t q = begin; q < end; ++q) mine(q, partial);
      });
  for (const MiningPartial& partial : partials) {
    result.loss += partial.loss;
    result.total_triplets += partial.total_triplets;
    result.active_triplets += partial.active_triplets;
    AddInPlace(result.grad_image, partial.grad_image);
    AddInPlace(result.grad_recipe, partial.grad_recipe);
  }
}

/// Divides the accumulated loss/gradients by the strategy's normaliser.
void Finalize(BatchLossResult& result, MiningStrategy strategy) {
  const int64_t denom = std::max<int64_t>(
      1, strategy == MiningStrategy::kAdaptive ? result.active_triplets
                                               : result.total_triplets);
  const float inv = 1.0f / static_cast<float>(denom);
  result.loss *= inv;
  ScaleInPlace(result.grad_image, inv);
  ScaleInPlace(result.grad_recipe, inv);
}

}  // namespace

BatchLossResult InstanceTripletLoss(const Tensor& image_emb,
                                    const Tensor& recipe_emb, float margin,
                                    MiningStrategy strategy) {
  ADAMINE_CHECK(SameShape(image_emb, recipe_emb));
  const int64_t b = image_emb.rows();
  BatchLossResult result;
  result.grad_image = Tensor(image_emb.shape());
  result.grad_recipe = Tensor(recipe_emb.shape());
  // Rows are unit-normalised, so cosine similarity is a plain GEMM.
  Tensor sims = Gemm(image_emb, false, recipe_emb, true);  // [B, B]

  MineQueries(b, image_emb, recipe_emb, result,
              [&](int64_t q, MiningPartial& partial) {
    const float pos_i2r = sims.At(q, q);  // Image query q -> recipe q.
    const float pos_r2i = sims.At(q, q);  // Recipe query q -> image q.
    for (int64_t n = 0; n < b; ++n) {
      if (n == q) continue;
      // Image query: l = [S(q,n) - S(q,q) + margin]_+.
      {
        const float viol = sims.At(q, n) - pos_i2r + margin;
        ++partial.total_triplets;
        if (viol > 0.0f) {
          ++partial.active_triplets;
          partial.loss += viol;
          // d l / d img_q = rec_n - rec_q; d l / d rec_q = -img_q;
          // d l / d rec_n = +img_q. (d(x,y) = 1 - x.y on unit rows.)
          AddRow(partial.grad_image, q, recipe_emb, n, 1.0f);
          AddRow(partial.grad_image, q, recipe_emb, q, -1.0f);
          AddRow(partial.grad_recipe, q, image_emb, q, -1.0f);
          AddRow(partial.grad_recipe, n, image_emb, q, 1.0f);
        }
      }
      // Recipe query: l = [S(n,q) - S(q,q) + margin]_+.
      {
        const float viol = sims.At(n, q) - pos_r2i + margin;
        ++partial.total_triplets;
        if (viol > 0.0f) {
          ++partial.active_triplets;
          partial.loss += viol;
          AddRow(partial.grad_recipe, q, image_emb, n, 1.0f);
          AddRow(partial.grad_recipe, q, image_emb, q, -1.0f);
          AddRow(partial.grad_image, q, recipe_emb, q, -1.0f);
          AddRow(partial.grad_image, n, recipe_emb, q, 1.0f);
        }
      }
    }
  });
  Finalize(result, strategy);
  return result;
}

BatchLossResult SemanticTripletLoss(const Tensor& image_emb,
                                    const Tensor& recipe_emb,
                                    const std::vector<int64_t>& labels,
                                    float margin, MiningStrategy strategy,
                                    Rng& rng) {
  ADAMINE_CHECK(SameShape(image_emb, recipe_emb));
  const int64_t b = image_emb.rows();
  ADAMINE_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  BatchLossResult result;
  result.grad_image = Tensor(image_emb.shape());
  result.grad_recipe = Tensor(recipe_emb.shape());

  // Labeled items and per-query candidate sets.
  std::vector<int64_t> labeled;
  for (int64_t i = 0; i < b; ++i) {
    if (labels[static_cast<size_t>(i)] >= 0) labeled.push_back(i);
  }
  // Need a labeled query + labeled positive + any third item as negative.
  if (labeled.size() < 2 || b < 3) return result;

  struct Query {
    int64_t index;
    int64_t positive = -1;           // Chosen by the sequential RNG pass.
    std::vector<int64_t> positives;  // Same class, other item.
    std::vector<int64_t> negatives;  // Not of the query class.
  };
  std::vector<Query> queries;
  int64_t min_negatives = b;
  for (int64_t q : labeled) {
    Query query{q, -1, {}, {}};
    const int64_t c = labels[static_cast<size_t>(q)];
    // Positives: labeled items of the query class. Negatives: "the
    // remaining items that do not belong to the query class" (§4.4) —
    // unlabeled items count as negatives, exactly as in the paper's batch
    // construction where only half the pairs carry a class.
    for (int64_t j = 0; j < b; ++j) {
      if (j == q) continue;
      if (labels[static_cast<size_t>(j)] == c) {
        query.positives.push_back(j);
      } else {
        query.negatives.push_back(j);
      }
    }
    if (query.positives.empty() || query.negatives.empty()) continue;
    min_negatives = std::min(
        min_negatives, static_cast<int64_t>(query.negatives.size()));
    queries.push_back(std::move(query));
  }
  if (queries.empty()) return result;

  // All randomness is drawn here, sequentially and in query order — the
  // exact draw sequence of the pre-kernel-layer loop — so the parallel
  // mining below is pure arithmetic and the RNG stream is untouched by the
  // thread count.
  for (Query& query : queries) {
    // One random same-class positive (§4.4); negatives capped to the
    // smallest negative-ensemble size in the batch for fairness.
    query.positive = query.positives[static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(query.positives.size())))];
    if (static_cast<int64_t>(query.negatives.size()) > min_negatives) {
      rng.Shuffle(query.negatives);
      query.negatives.resize(static_cast<size_t>(min_negatives));
    }
  }

  Tensor sims = Gemm(image_emb, false, recipe_emb, true);  // [B, B]

  MineQueries(static_cast<int64_t>(queries.size()), image_emb, recipe_emb,
              result, [&](int64_t qi, MiningPartial& partial) {
    const Query& query = queries[static_cast<size_t>(qi)];
    const int64_t q = query.index;
    const int64_t p = query.positive;
    for (int64_t n : query.negatives) {
      // Image query q against recipe positive p and recipe negative n.
      {
        const float viol = sims.At(q, n) - sims.At(q, p) + margin;
        ++partial.total_triplets;
        if (viol > 0.0f) {
          ++partial.active_triplets;
          partial.loss += viol;
          AddRow(partial.grad_image, q, recipe_emb, n, 1.0f);
          AddRow(partial.grad_image, q, recipe_emb, p, -1.0f);
          AddRow(partial.grad_recipe, p, image_emb, q, -1.0f);
          AddRow(partial.grad_recipe, n, image_emb, q, 1.0f);
        }
      }
      // Recipe query q against image positive p and image negative n.
      {
        const float viol = sims.At(n, q) - sims.At(p, q) + margin;
        ++partial.total_triplets;
        if (viol > 0.0f) {
          ++partial.active_triplets;
          partial.loss += viol;
          AddRow(partial.grad_recipe, q, image_emb, n, 1.0f);
          AddRow(partial.grad_recipe, q, image_emb, p, -1.0f);
          AddRow(partial.grad_image, p, recipe_emb, q, -1.0f);
          AddRow(partial.grad_image, n, recipe_emb, q, 1.0f);
        }
      }
    }
  });
  Finalize(result, strategy);
  return result;
}

BatchLossResult PairwiseLoss(const Tensor& image_emb,
                             const Tensor& recipe_emb, float pos_margin,
                             float neg_margin) {
  ADAMINE_CHECK(SameShape(image_emb, recipe_emb));
  const int64_t b = image_emb.rows();
  BatchLossResult result;
  result.grad_image = Tensor(image_emb.shape());
  result.grad_recipe = Tensor(recipe_emb.shape());
  Tensor sims = Gemm(image_emb, false, recipe_emb, true);

  MineQueries(b, image_emb, recipe_emb, result,
              [&](int64_t i, MiningPartial& partial) {
    // Positive pair (i, i): [d - pos_margin]_+ with d = 1 - S(i, i).
    {
      const float viol = (1.0f - sims.At(i, i)) - pos_margin;
      ++partial.total_triplets;
      if (viol > 0.0f) {
        ++partial.active_triplets;
        partial.loss += viol;
        // d d / d img_i = -rec_i, d d / d rec_i = -img_i.
        AddRow(partial.grad_image, i, recipe_emb, i, -1.0f);
        AddRow(partial.grad_recipe, i, image_emb, i, -1.0f);
      }
    }
    // Negative pairs (i, j), j != i: [neg_margin - d]_+ = [S - (1 - nm)]_+.
    for (int64_t j = 0; j < b; ++j) {
      if (j == i) continue;
      const float viol = neg_margin - (1.0f - sims.At(i, j));
      ++partial.total_triplets;
      if (viol > 0.0f) {
        ++partial.active_triplets;
        partial.loss += viol;
        AddRow(partial.grad_image, i, recipe_emb, j, 1.0f);
        AddRow(partial.grad_recipe, j, image_emb, i, 1.0f);
      }
    }
  });
  // Pairwise methods use plain averaging over all pairs.
  Finalize(result, MiningStrategy::kAverage);
  return result;
}

}  // namespace adamine::core
