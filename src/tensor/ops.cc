// Dense tensor kernels. Every loop here dispatches through the kernel
// execution layer (src/kernel/): elementwise ops and row sweeps run under
// ParallelFor with fixed chunking, GEMM goes to the tiled panel-packed
// kernel, and whole-tensor reductions use ordered pairwise summation — all
// bit-deterministic in the configured thread count.

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "kernel/gemm.h"
#include "kernel/kernel.h"
#include "kernel/reduce.h"

namespace adamine {

namespace {

template <typename F>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, F f) {
  ADAMINE_CHECK(a.defined());
  ADAMINE_CHECK(b.defined());
  ADAMINE_CHECK(SameShape(a, b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  kernel::ParallelFor(a.numel(), kernel::kElementwiseGrain,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          po[i] = f(pa[i], pb[i]);
                        }
                      });
  return out;
}

template <typename F>
Tensor ElementwiseUnary(const Tensor& a, F f) {
  ADAMINE_CHECK(a.defined());
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(a.numel(), kernel::kElementwiseGrain,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) po[i] = f(pa[i]);
                      });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor Scale(const Tensor& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x + s; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::log(x); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(a,
                          [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x * x; });
}

void AddInPlace(Tensor& y, const Tensor& x) {
  ADAMINE_CHECK(y.defined());
  ADAMINE_CHECK(x.defined());
  ADAMINE_CHECK(SameShape(y, x));
  float* py = y.data();
  const float* px = x.data();
  kernel::ParallelFor(y.numel(), kernel::kElementwiseGrain,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) py[i] += px[i];
                      });
}

void AxpyInPlace(Tensor& y, float alpha, const Tensor& x) {
  ADAMINE_CHECK(y.defined());
  ADAMINE_CHECK(x.defined());
  ADAMINE_CHECK(SameShape(y, x));
  float* py = y.data();
  const float* px = x.data();
  kernel::ParallelFor(y.numel(), kernel::kElementwiseGrain,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          py[i] += alpha * px[i];
                        }
                      });
}

void ScaleInPlace(Tensor& y, float s) {
  ADAMINE_CHECK(y.defined());
  float* py = y.data();
  kernel::ParallelFor(y.numel(), kernel::kElementwiseGrain,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) py[i] *= s;
                      });
}

Tensor Gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  ADAMINE_CHECK_EQ(k, kb);

  Tensor out({m, n});
  kernel::Gemm(a.data(), a.cols(), trans_a, b.data(), b.cols(), trans_b, m, n,
               k, out.data());
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return Gemm(a, false, b, false);
}

Tensor Transpose2D(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t r = a.rows();
  const int64_t c = a.cols();
  Tensor out({c, r});
  const float* pa = a.data();
  float* po = out.data();
  // Parallel over output rows (input columns); disjoint writes.
  kernel::ParallelFor(c, kernel::kRowGrain, [&](int64_t j0, int64_t j1) {
    for (int64_t j = j0; j < j1; ++j) {
      for (int64_t i = 0; i < r; ++i) po[j * r + i] = pa[i * c + j];
    }
  });
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(bias.numel(), a.cols());
  Tensor out = a.Clone();
  const int64_t c = a.cols();
  float* po = out.data();
  const float* pb = bias.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          float* row = po + i * c;
                          for (int64_t j = 0; j < c; ++j) row[j] += pb[j];
                        }
                      });
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.rows(), b.rows());
  const int64_t ca = a.cols();
  const int64_t cb = b.cols();
  Tensor out({a.rows(), ca + cb});
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          float* row = po + i * (ca + cb);
                          std::copy(pa + i * ca, pa + (i + 1) * ca, row);
                          std::copy(pb + i * cb, pb + (i + 1) * cb, row + ca);
                        }
                      });
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.cols(), b.cols());
  const int64_t c = a.cols();
  Tensor out({a.rows() + b.rows(), c});
  std::copy(a.data(), a.data() + a.numel(), out.data());
  std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t c0, int64_t c1) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_GE(c0, 0);
  ADAMINE_CHECK_LT(c0, c1);
  ADAMINE_CHECK_LE(c1, a.cols());
  const int64_t c = a.cols();
  const int64_t w = c1 - c0;
  Tensor out({a.rows(), w});
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          const float* src = pa + i * c + c0;
                          std::copy(src, src + w, po + i * w);
                        }
                      });
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t r0, int64_t r1) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_GE(r0, 0);
  ADAMINE_CHECK_LT(r0, r1);
  ADAMINE_CHECK_LE(r1, a.rows());
  const int64_t c = a.cols();
  Tensor out({r1 - r0, c});
  std::copy(a.data() + r0 * c, a.data() + r1 * c, out.data());
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  // Validate up front so failures abort on the calling thread, then copy in
  // parallel.
  for (int64_t r : indices) {
    ADAMINE_CHECK_GE(r, 0);
    ADAMINE_CHECK_LT(r, a.rows());
  }
  const int64_t c = a.cols();
  const int64_t n = static_cast<int64_t>(indices.size());
  Tensor out({n, c});
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(n, kernel::kRowGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* src = pa + indices[static_cast<size_t>(i)] * c;
      std::copy(src, src + c, po + i * c);
    }
  });
  return out;
}

void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  ADAMINE_CHECK_EQ(dst.ndim(), 2);
  ADAMINE_CHECK_EQ(src.ndim(), 2);
  ADAMINE_CHECK_EQ(dst.cols(), src.cols());
  ADAMINE_CHECK_EQ(static_cast<int64_t>(indices.size()), src.rows());
  for (int64_t r : indices) {
    ADAMINE_CHECK_GE(r, 0);
    ADAMINE_CHECK_LT(r, dst.rows());
  }
  kernel::ScatterAddRows(dst.data(), dst.cols(), indices.data(),
                         static_cast<int64_t>(indices.size()), src.data(),
                         src.cols(), src.cols());
}

float SumAll(const Tensor& a) {
  ADAMINE_CHECK(a.defined());
  return static_cast<float>(kernel::ParallelPairwiseSum(a.data(), a.numel()));
}

float MeanAll(const Tensor& a) {
  ADAMINE_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

Tensor RowSum(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t c = a.cols();
  Tensor out({a.rows()});
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          po[i] = static_cast<float>(
                              kernel::PairwiseSum(pa + i * c, c));
                        }
                      });
  return out;
}

Tensor ColSum(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  Tensor out({c});
  const float* pa = a.data();
  float* po = out.data();
  // Column-sliced: every chunk folds all rows in order for its own columns,
  // so the per-element accumulation order is thread-count independent.
  kernel::ParallelFor(c, /*grain=*/512, [&](int64_t j0, int64_t j1) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = pa + i * c;
      for (int64_t j = j0; j < j1; ++j) po[j] += row[j];
    }
  });
  return out;
}

Tensor ColMean(const Tensor& a) {
  Tensor out = ColSum(a);
  ScaleInPlace(out, 1.0f / static_cast<float>(a.rows()));
  return out;
}

float MaxAbs(const Tensor& a) {
  ADAMINE_CHECK(a.defined());
  const float* p = a.data();
  return kernel::ParallelReduceOrdered<float>(
      a.numel(), kernel::kReduceGrain, 0.0f,
      [p](int64_t begin, int64_t end) {
        float best = 0.0f;
        for (int64_t i = begin; i < end; ++i) {
          best = std::max(best, std::fabs(p[i]));
        }
        return best;
      },
      [](float acc, float partial) { return std::max(acc, partial); });
}

Tensor RowNorms(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t c = a.cols();
  Tensor out({a.rows()});
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          po[i] = static_cast<float>(std::sqrt(
                              kernel::PairwiseSumSquares(pa + i * c, c)));
                        }
                      });
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  Tensor out = a.Clone();
  const int64_t c = a.cols();
  float* po = out.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          float* row = po + i * c;
                          const double norm =
                              std::sqrt(kernel::PairwiseSumSquares(row, c));
                          if (norm < eps) continue;
                          const float inv = static_cast<float>(1.0 / norm);
                          for (int64_t j = 0; j < c; ++j) row[j] *= inv;
                        }
                      });
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  Tensor out(a.shape());
  const int64_t c = a.cols();
  const float* pa = a.data();
  float* po = out.data();
  kernel::ParallelFor(a.rows(), kernel::kRowGrain,
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          const float* in = pa + i * c;
                          float* o = po + i * c;
                          float mx = in[0];
                          for (int64_t j = 1; j < c; ++j) {
                            mx = std::max(mx, in[j]);
                          }
                          double denom = 0.0;
                          for (int64_t j = 0; j < c; ++j) {
                            o[j] = std::exp(in[j] - mx);
                            denom += o[j];
                          }
                          const float inv = static_cast<float>(1.0 / denom);
                          for (int64_t j = 0; j < c; ++j) o[j] *= inv;
                        }
                      });
  return out;
}

Tensor CosineSimilarityMatrix(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.cols(), b.cols());
  const Tensor an = L2NormalizeRows(a);
  const Tensor bn = L2NormalizeRows(b);
  return Gemm(an, false, bn, true);
}

float CosineDistance(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.numel(), b.numel());
  const int64_t n = a.numel();
  const double dot = kernel::PairwiseDot(a.data(), b.data(), n);
  const double na = kernel::PairwiseSumSquares(a.data(), n);
  const double nb = kernel::PairwiseSumSquares(b.data(), n);
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 1.0f;
  return static_cast<float>(1.0 - dot / denom);
}

}  // namespace adamine
