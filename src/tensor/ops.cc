#include "tensor/ops.h"

#include <cmath>

namespace adamine {

namespace {

template <typename F>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, F f) {
  ADAMINE_CHECK(SameShape(a, b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor ElementwiseUnary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor Scale(const Tensor& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x + s; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::log(x); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(a,
                          [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x * x; });
}

void AddInPlace(Tensor& y, const Tensor& x) {
  ADAMINE_CHECK(SameShape(y, x));
  float* py = y.data();
  const float* px = x.data();
  const int64_t n = y.numel();
  for (int64_t i = 0; i < n; ++i) py[i] += px[i];
}

void AxpyInPlace(Tensor& y, float alpha, const Tensor& x) {
  ADAMINE_CHECK(SameShape(y, x));
  float* py = y.data();
  const float* px = x.data();
  const int64_t n = y.numel();
  for (int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void ScaleInPlace(Tensor& y, float s) {
  float* py = y.data();
  const int64_t n = y.numel();
  for (int64_t i = 0; i < n; ++i) py[i] *= s;
}

Tensor Gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  ADAMINE_CHECK_EQ(k, kb);

  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t lda = a.cols();
  const int64_t ldb = b.cols();

  // i-k-j loop order keeps the innermost loop streaming over contiguous rows
  // of the output and (for the common non-transposed case) of B.
  if (!trans_a && !trans_b) {
    for (int64_t i = 0; i < m; ++i) {
      float* orow = po + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[i * lda + kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * ldb;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // out[i][j] = sum_k a[i][k] * b[j][k]: dot of two contiguous rows.
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * lda;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * ldb;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        orow[j] = acc;
      }
    }
  } else if (trans_a && !trans_b) {
    // out[i][j] = sum_k a[k][i] * b[k][j].
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * lda;
      const float* brow = pb + kk * ldb;
      for (int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = po + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  } else {
    // out[i][j] = sum_k a[k][i] * b[j][k].
    for (int64_t i = 0; i < m; ++i) {
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * ldb;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += pa[kk * lda + i] * brow[kk];
        orow[j] = acc;
      }
    }
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return Gemm(a, false, b, false);
}

Tensor Transpose2D(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t r = a.rows();
  const int64_t c = a.cols();
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(bias.numel(), a.cols());
  Tensor out = a.Clone();
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  float* po = out.data();
  const float* pb = bias.data();
  for (int64_t i = 0; i < n; ++i) {
    float* row = po + i * c;
    for (int64_t j = 0; j < c; ++j) row[j] += pb[j];
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows();
  const int64_t ca = a.cols();
  const int64_t cb = b.cols();
  Tensor out({n, ca + cb});
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * (ca + cb);
    const float* ra = a.data() + i * ca;
    const float* rb = b.data() + i * cb;
    std::copy(ra, ra + ca, row);
    std::copy(rb, rb + cb, row + ca);
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.cols(), b.cols());
  const int64_t c = a.cols();
  Tensor out({a.rows() + b.rows(), c});
  std::copy(a.data(), a.data() + a.numel(), out.data());
  std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t c0, int64_t c1) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_GE(c0, 0);
  ADAMINE_CHECK_LT(c0, c1);
  ADAMINE_CHECK_LE(c1, a.cols());
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  const int64_t w = c1 - c0;
  Tensor out({n, w});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = a.data() + i * c + c0;
    std::copy(src, src + w, out.data() + i * w);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t r0, int64_t r1) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_GE(r0, 0);
  ADAMINE_CHECK_LT(r0, r1);
  ADAMINE_CHECK_LE(r1, a.rows());
  const int64_t c = a.cols();
  Tensor out({r1 - r0, c});
  std::copy(a.data() + r0 * c, a.data() + r1 * c, out.data());
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t c = a.cols();
  Tensor out({static_cast<int64_t>(indices.size()), c});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    ADAMINE_CHECK_GE(r, 0);
    ADAMINE_CHECK_LT(r, a.rows());
    const float* src = a.data() + r * c;
    std::copy(src, src + c, out.data() + static_cast<int64_t>(i) * c);
  }
  return out;
}

void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  ADAMINE_CHECK_EQ(dst.ndim(), 2);
  ADAMINE_CHECK_EQ(src.ndim(), 2);
  ADAMINE_CHECK_EQ(dst.cols(), src.cols());
  ADAMINE_CHECK_EQ(static_cast<int64_t>(indices.size()), src.rows());
  const int64_t c = dst.cols();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    ADAMINE_CHECK_GE(r, 0);
    ADAMINE_CHECK_LT(r, dst.rows());
    float* d = dst.data() + r * c;
    const float* s = src.data() + static_cast<int64_t>(i) * c;
    for (int64_t j = 0; j < c; ++j) d[j] += s[j];
  }
}

float SumAll(const Tensor& a) {
  const float* p = a.data();
  const int64_t n = a.numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  ADAMINE_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

Tensor RowSum(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  Tensor out({n});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * c;
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) acc += row[j];
    out[i] = static_cast<float>(acc);
  }
  return out;
}

Tensor ColSum(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  Tensor out({c});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * c;
    for (int64_t j = 0; j < c; ++j) out[j] += row[j];
  }
  return out;
}

Tensor ColMean(const Tensor& a) {
  Tensor out = ColSum(a);
  ScaleInPlace(out, 1.0f / static_cast<float>(a.rows()));
  return out;
}

float MaxAbs(const Tensor& a) {
  const float* p = a.data();
  const int64_t n = a.numel();
  float best = 0.0f;
  for (int64_t i = 0; i < n; ++i) best = std::max(best, std::fabs(p[i]));
  return best;
}

Tensor RowNorms(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  Tensor out({n});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * c;
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) acc += double(row[j]) * row[j];
    out[i] = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  Tensor out = a.Clone();
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * c;
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) acc += double(row[j]) * row[j];
    const double norm = std::sqrt(acc);
    if (norm < eps) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  Tensor out(a.shape());
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  for (int64_t i = 0; i < n; ++i) {
    const float* in = a.data() + i * c;
    float* o = out.data() + i * c;
    float mx = in[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, in[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) o[j] *= inv;
  }
  return out;
}

Tensor CosineSimilarityMatrix(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.ndim(), 2);
  ADAMINE_CHECK_EQ(b.ndim(), 2);
  ADAMINE_CHECK_EQ(a.cols(), b.cols());
  const Tensor an = L2NormalizeRows(a);
  const Tensor bn = L2NormalizeRows(b);
  return Gemm(an, false, bn, true);
}

float CosineDistance(const Tensor& a, const Tensor& b) {
  ADAMINE_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    dot += double(pa[i]) * pb[i];
    na += double(pa[i]) * pa[i];
    nb += double(pb[i]) * pb[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 1.0f;
  return static_cast<float>(1.0 - dot / denom);
}

}  // namespace adamine
