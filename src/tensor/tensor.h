#ifndef ADAMINE_TENSOR_TENSOR_H_
#define ADAMINE_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace adamine {

/// Dense, contiguous, row-major float32 tensor.
///
/// Copying a Tensor is cheap and *aliases* the underlying buffer (numpy
/// semantics); use Clone() for a deep copy. All shape arithmetic is checked
/// with ADAMINE_CHECK, so misuse aborts with a diagnostic instead of
/// corrupting memory.
class Tensor {
 public:
  /// Empty tensor (no shape, no data).
  Tensor() = default;

  /// Zero-initialised tensor of the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<int64_t> shape);

  /// Convenience 1-D / 2-D constructors.
  static Tensor Zeros(std::vector<int64_t> shape) { return Tensor(shape); }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng,
                      float stddev = 1.0f);
  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor RandUniform(std::vector<int64_t> shape, Rng& rng, float lo,
                            float hi);

  bool defined() const { return data_ != nullptr; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int64_t i) const;
  int64_t numel() const;

  /// Number of rows / columns; requires a 2-D tensor.
  int64_t rows() const;
  int64_t cols() const;

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  /// Flat element access.
  float& operator[](int64_t i);
  float operator[](int64_t i) const;

  /// 2-D element access (checked).
  float& At(int64_t r, int64_t c);
  float At(int64_t r, int64_t c) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Returns an alias sharing this buffer with a different shape of equal
  /// numel.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to 0.
  void Zero() { Fill(0.0f); }

  /// True if both tensors share the same buffer.
  bool SharesDataWith(const Tensor& other) const {
    return data_ == other.data_;
  }

  /// "Tensor([2, 3])" plus up to `max_elems` leading values; for debugging.
  std::string DebugString(int64_t max_elems = 8) const;

 private:
  std::vector<int64_t> shape_;
  std::shared_ptr<std::vector<float>> data_;
};

/// True if the shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace adamine

#endif  // ADAMINE_TENSOR_TENSOR_H_
