#ifndef ADAMINE_TENSOR_OPS_H_
#define ADAMINE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace adamine {

// ---------------------------------------------------------------------------
// Elementwise operations (all allocate a fresh result tensor).
// ---------------------------------------------------------------------------

/// Elementwise a + b (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise a / b.
Tensor Div(const Tensor& a, const Tensor& b);
/// a * s.
Tensor Scale(const Tensor& a, float s);
/// a + s.
Tensor AddScalar(const Tensor& a, float s);
/// exp(a), log(a), tanh(a), logistic sigmoid, max(a, 0), a^2.
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Square(const Tensor& a);

// ---------------------------------------------------------------------------
// In-place operations (mutate the first argument).
// ---------------------------------------------------------------------------

/// y += x.
void AddInPlace(Tensor& y, const Tensor& x);
/// y += alpha * x.
void AxpyInPlace(Tensor& y, float alpha, const Tensor& x);
/// y *= s.
void ScaleInPlace(Tensor& y, float s);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// General matrix multiply: op(A) * op(B), where op is optional transpose.
/// A and B must be 2-D; inner dimensions of op(A), op(B) must agree.
Tensor Gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b);

/// A * B (no transposes).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transposed copy of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

/// Adds a length-C row vector `bias` to every row of the [N, C] tensor `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

// ---------------------------------------------------------------------------
// Structural operations on 2-D tensors.
// ---------------------------------------------------------------------------

/// Horizontal concatenation [N, Ca] ++ [N, Cb] -> [N, Ca+Cb].
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [Na, C] ++ [Nb, C] -> [Na+Nb, C].
Tensor ConcatRows(const Tensor& a, const Tensor& b);
/// Columns [c0, c1) of `a`.
Tensor SliceCols(const Tensor& a, int64_t c0, int64_t c1);
/// Rows [r0, r1) of `a`.
Tensor SliceRows(const Tensor& a, int64_t r0, int64_t r1);
/// Rows `indices[i]` of `a`, stacked; indices may repeat.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);
/// dst.row(indices[i]) += src.row(i) for all i. Duplicate indices accumulate.
void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum / mean over all elements.
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
/// Row-wise sum of a [N, C] tensor -> [N].
Tensor RowSum(const Tensor& a);
/// Column-wise sum of a [N, C] tensor -> [C].
Tensor ColSum(const Tensor& a);
/// Column-wise mean of a [N, C] tensor -> [C].
Tensor ColMean(const Tensor& a);
/// Largest |element|.
float MaxAbs(const Tensor& a);

// ---------------------------------------------------------------------------
// Rows as vectors.
// ---------------------------------------------------------------------------

/// L2 norm of each row of a [N, C] tensor -> [N].
Tensor RowNorms(const Tensor& a);
/// Each row scaled to unit L2 norm (rows with norm < eps are left as zeros).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);
/// Row-wise softmax of a [N, C] tensor.
Tensor SoftmaxRows(const Tensor& a);

/// Cosine similarity of every row of `a` against every row of `b`:
/// [Na, D] x [Nb, D] -> [Na, Nb]. Rows need not be pre-normalised.
Tensor CosineSimilarityMatrix(const Tensor& a, const Tensor& b);

/// Cosine distance (1 - cosine similarity) between two equal-length vectors
/// given as 1-D tensors or single rows.
float CosineDistance(const Tensor& a, const Tensor& b);

}  // namespace adamine

#endif  // ADAMINE_TENSOR_OPS_H_
