#include "tensor/tensor.h"

#include <sstream>

namespace adamine {

namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ADAMINE_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  ADAMINE_CHECK(!shape_.empty());
  data_ = std::make_shared<std::vector<float>>(NumelOf(shape_), 0.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  ADAMINE_CHECK_EQ(NumelOf(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, Rng& rng, float lo,
                           float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  ADAMINE_CHECK_GE(i, 0);
  ADAMINE_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::numel() const {
  if (!defined()) return 0;
  return static_cast<int64_t>(data_->size());
}

int64_t Tensor::rows() const {
  ADAMINE_CHECK_EQ(ndim(), 2);
  return shape_[0];
}

int64_t Tensor::cols() const {
  ADAMINE_CHECK_EQ(ndim(), 2);
  return shape_[1];
}

float& Tensor::operator[](int64_t i) {
  ADAMINE_CHECK_GE(i, 0);
  ADAMINE_CHECK_LT(i, numel());
  return (*data_)[static_cast<size_t>(i)];
}

float Tensor::operator[](int64_t i) const {
  ADAMINE_CHECK_GE(i, 0);
  ADAMINE_CHECK_LT(i, numel());
  return (*data_)[static_cast<size_t>(i)];
}

float& Tensor::At(int64_t r, int64_t c) {
  ADAMINE_CHECK_EQ(ndim(), 2);
  ADAMINE_CHECK_GE(r, 0);
  ADAMINE_CHECK_LT(r, shape_[0]);
  ADAMINE_CHECK_GE(c, 0);
  ADAMINE_CHECK_LT(c, shape_[1]);
  return (*data_)[static_cast<size_t>(r * shape_[1] + c)];
}

float Tensor::At(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->At(r, c);
}

Tensor Tensor::Clone() const {
  ADAMINE_CHECK(defined());
  Tensor t;
  t.shape_ = shape_;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  ADAMINE_CHECK(defined());
  ADAMINE_CHECK_EQ(NumelOf(new_shape), numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  ADAMINE_CHECK(defined());
  std::fill(data_->begin(), data_->end(), value);
}

std::string Tensor::DebugString(int64_t max_elems) const {
  std::ostringstream oss;
  oss << "Tensor([";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << "]";
  if (defined()) {
    oss << ", {";
    const int64_t n = std::min<int64_t>(numel(), max_elems);
    for (int64_t i = 0; i < n; ++i) {
      if (i) oss << ", ";
      oss << (*data_)[static_cast<size_t>(i)];
    }
    if (numel() > n) oss << ", ...";
    oss << "}";
  }
  oss << ")";
  return oss.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace adamine
