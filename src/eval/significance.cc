#include "eval/significance.h"

#include <cmath>

namespace adamine::eval {

StatusOr<BootstrapResult> PairedBootstrap(
    const std::vector<int64_t>& ranks_a, const std::vector<int64_t>& ranks_b,
    int64_t resamples, Rng& rng) {
  if (ranks_a.empty() || ranks_a.size() != ranks_b.size()) {
    return Status::InvalidArgument(
        "paired bootstrap needs equal-length, non-empty rank lists");
  }
  if (resamples <= 0) {
    return Status::InvalidArgument("resamples must be positive");
  }
  const int64_t n = static_cast<int64_t>(ranks_a.size());
  std::vector<double> diffs(static_cast<size_t>(n));
  double mean = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    diffs[static_cast<size_t>(i)] = static_cast<double>(
        ranks_b[static_cast<size_t>(i)] - ranks_a[static_cast<size_t>(i)]);
    mean += diffs[static_cast<size_t>(i)];
  }
  mean /= static_cast<double>(n);

  BootstrapResult result;
  result.mean_diff = mean;
  result.resamples = resamples;
  if (mean == 0.0) {
    result.p_value = 1.0;
    return result;
  }
  // Count resampled means whose sign flips relative to the observed mean.
  int64_t flips = 0;
  for (int64_t s = 0; s < resamples; ++s) {
    double resampled = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      resampled += diffs[static_cast<size_t>(rng.UniformInt(n))];
    }
    resampled /= static_cast<double>(n);
    if ((mean > 0.0 && resampled <= 0.0) ||
        (mean < 0.0 && resampled >= 0.0)) {
      ++flips;
    }
  }
  // Two-sided with the +1 smoothing that keeps p > 0.
  result.p_value = std::min(
      1.0, 2.0 * (static_cast<double>(flips) + 1.0) /
               (static_cast<double>(resamples) + 1.0));
  return result;
}

}  // namespace adamine::eval
