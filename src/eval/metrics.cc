#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "kernel/kernel.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace adamine::eval {

std::vector<int64_t> MatchRanks(const Tensor& queries,
                                const Tensor& candidates) {
  ADAMINE_CHECK_EQ(queries.ndim(), 2);
  ADAMINE_CHECK(SameShape(queries, candidates));
  const int64_t n = queries.rows();
  // Cosine similarity: higher = closer; rank counts strictly closer items
  // only (rank = 1 + #{s > match_sim}), the paper's protocol. Candidates
  // tied with the match do not push it down, so two queries with identical
  // similarity profiles get identical ranks regardless of bag position.
  Tensor sims = CosineSimilarityMatrix(queries, candidates);
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  // The full ranking sweep is embarrassingly parallel over queries: each
  // query's rank is a pure function of its similarity row.
  kernel::ParallelFor(n, kernel::kRowGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float match_sim = sims.At(i, i);
      const float* row = sims.data() + i * n;
      int64_t rank = 1;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (row[j] > match_sim) ++rank;
      }
      ranks[static_cast<size_t>(i)] = rank;
    }
  });
  return ranks;
}

RetrievalMetrics MetricsFromRanks(const std::vector<int64_t>& ranks) {
  ADAMINE_CHECK(!ranks.empty());
  RetrievalMetrics m;
  m.num_queries = static_cast<int64_t>(ranks.size());
  std::vector<int64_t> sorted = ranks;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  m.medr = (n % 2 == 1)
               ? static_cast<double>(sorted[n / 2])
               : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  int64_t r1 = 0, r5 = 0, r10 = 0;
  for (int64_t r : ranks) {
    if (r <= 1) ++r1;
    if (r <= 5) ++r5;
    if (r <= 10) ++r10;
  }
  const double denom = static_cast<double>(n);
  m.r_at_1 = 100.0 * r1 / denom;
  m.r_at_5 = 100.0 * r5 / denom;
  m.r_at_10 = 100.0 * r10 / denom;
  return m;
}

Stat MeanStd(const std::vector<double>& samples) {
  ADAMINE_CHECK(!samples.empty());
  Stat s;
  for (double v : samples) s.mean += v;
  s.mean /= static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.std = std::sqrt(sq / static_cast<double>(samples.size()));
  return s;
}

namespace {

BaggedMetrics Aggregate(const std::vector<RetrievalMetrics>& per_bag) {
  std::vector<double> medr, r1, r5, r10;
  for (const auto& m : per_bag) {
    medr.push_back(m.medr);
    r1.push_back(m.r_at_1);
    r5.push_back(m.r_at_5);
    r10.push_back(m.r_at_10);
  }
  BaggedMetrics out;
  out.medr = MeanStd(medr);
  out.r_at_1 = MeanStd(r1);
  out.r_at_5 = MeanStd(r5);
  out.r_at_10 = MeanStd(r10);
  return out;
}

}  // namespace

CrossModalResult EvaluateBags(const Tensor& image_emb,
                              const Tensor& recipe_emb, int64_t bag_size,
                              int64_t num_bags, Rng& rng) {
  ADAMINE_CHECK(SameShape(image_emb, recipe_emb));
  ADAMINE_CHECK_GT(num_bags, 0);
  const int64_t n = image_emb.rows();
  const int64_t size = std::min(bag_size, n);
  ADAMINE_CHECK_GT(size, 0);

  std::vector<RetrievalMetrics> i2r, r2i;
  for (int64_t b = 0; b < num_bags; ++b) {
    auto idx = rng.SampleWithoutReplacement(n, size);
    Tensor img = GatherRows(image_emb, idx);
    Tensor rec = GatherRows(recipe_emb, idx);
    i2r.push_back(MetricsFromRanks(MatchRanks(img, rec)));
    r2i.push_back(MetricsFromRanks(MatchRanks(rec, img)));
  }
  CrossModalResult result;
  result.image_to_recipe = Aggregate(i2r);
  result.recipe_to_image = Aggregate(r2i);
  result.bag_size = size;
  result.num_bags = num_bags;
  return result;
}

}  // namespace adamine::eval
