#ifndef ADAMINE_EVAL_SIGNIFICANCE_H_
#define ADAMINE_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace adamine::eval {

/// Result of a paired bootstrap comparison of two retrieval systems on the
/// same queries.
struct BootstrapResult {
  /// Mean rank difference (b - a); positive means system A ranks matches
  /// better (lower).
  double mean_diff = 0.0;
  /// Two-sided p-value: probability, under resampling, that the observed
  /// direction of the difference reverses.
  double p_value = 1.0;
  int64_t resamples = 0;
};

/// Paired bootstrap over per-query match ranks of two systems evaluated on
/// identical queries (same order). Requires equal, non-empty rank lists.
StatusOr<BootstrapResult> PairedBootstrap(
    const std::vector<int64_t>& ranks_a, const std::vector<int64_t>& ranks_b,
    int64_t resamples, Rng& rng);

}  // namespace adamine::eval

#endif  // ADAMINE_EVAL_SIGNIFICANCE_H_
