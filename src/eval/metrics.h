#ifndef ADAMINE_EVAL_METRICS_H_
#define ADAMINE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace adamine::eval {

/// Cross-modal retrieval quality over one query set.
struct RetrievalMetrics {
  /// Median rank of the true match (1-based; 1.0 is perfect).
  double medr = 0.0;
  /// Recall@K in percent (0-100).
  double r_at_1 = 0.0;
  double r_at_5 = 0.0;
  double r_at_10 = 0.0;
  int64_t num_queries = 0;
};

/// Rank (1-based) of each query's true match. `queries` and `candidates`
/// are [N, D] with row i of `candidates` being the match of query i; items
/// are compared by cosine distance. Rank counts strictly closer candidates
/// only (rank = 1 + #{sim > match_sim}, the paper's protocol), so
/// candidates tied with the match never push it down and the result is
/// independent of the match's position in the bag.
std::vector<int64_t> MatchRanks(const Tensor& queries,
                                const Tensor& candidates);

/// Aggregates match ranks into MedR / R@K.
RetrievalMetrics MetricsFromRanks(const std::vector<int64_t>& ranks);

/// Mean and standard deviation of a set of samples.
struct Stat {
  double mean = 0.0;
  double std = 0.0;
};

Stat MeanStd(const std::vector<double>& samples);

/// Aggregated metrics over several test bags (mean +- std per metric).
struct BaggedMetrics {
  Stat medr;
  Stat r_at_1;
  Stat r_at_5;
  Stat r_at_10;
};

/// Both retrieval directions of the paper's protocol.
struct CrossModalResult {
  BaggedMetrics image_to_recipe;
  BaggedMetrics recipe_to_image;
  int64_t bag_size = 0;
  int64_t num_bags = 0;
};

/// The paper's §4.2 protocol: samples `num_bags` subsets of `bag_size`
/// matching pairs from the embedded test set (rows of `image_emb` /
/// `recipe_emb` are aligned pairs), computes MedR and R@{1,5,10} per bag in
/// both directions, and reports mean +- std over bags. `bag_size` is capped
/// at the number of pairs available.
CrossModalResult EvaluateBags(const Tensor& image_emb,
                              const Tensor& recipe_emb, int64_t bag_size,
                              int64_t num_bags, Rng& rng);

}  // namespace adamine::eval

#endif  // ADAMINE_EVAL_METRICS_H_
